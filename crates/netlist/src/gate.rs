//! Gate and net primitives of the netlist IR.

use std::fmt;

/// Identifier of a net (a single-bit signal).
///
/// Every net has exactly one driver, so a `NetId` doubles as the identifier
/// of the gate (or primary input, or constant) that drives it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Raw index of this net inside [`Netlist::gates`](crate::Netlist).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NetId` from a raw index.
    ///
    /// Mostly useful when iterating over all nets of a
    /// [`Netlist`](crate::Netlist) by index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The cell kinds of the library.
///
/// The set mirrors a small standard-cell library: simple one- and two-input
/// cells plus the three compound cells (`Mux2`, `Maj3`, `Xor3`) that a
/// commercial library would map full adders and selectors onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input; its value is applied externally at each cycle.
    Input,
    /// Constant logic `0`.
    Const0,
    /// Constant logic `1`.
    Const1,
    /// Buffer: `y = a`.
    Buf,
    /// Inverter: `y = !a`.
    Not,
    /// Two-input AND.
    And2,
    /// Two-input OR.
    Or2,
    /// Two-input NAND.
    Nand2,
    /// Two-input NOR.
    Nor2,
    /// Two-input XOR.
    Xor2,
    /// Two-input XNOR.
    Xnor2,
    /// Two-to-one multiplexer: inputs `[d0, d1, sel]`, `y = sel ? d1 : d0`.
    Mux2,
    /// Three-input majority (a full adder's carry): `y = ab | ac | bc`.
    Maj3,
    /// Three-input XOR (a full adder's sum): `y = a ^ b ^ c`.
    Xor3,
    /// Four-input AND.
    And4,
    /// Four-input OR.
    Or4,
}

impl GateKind {
    /// The widest fan-in any cell kind of the library has. Scratch buffers
    /// indexed by pin position can be sized with this constant.
    pub const MAX_ARITY: usize = 4;

    /// Number of input pins of this cell kind.
    #[inline]
    pub fn arity(self) -> usize {
        use GateKind::*;
        match self {
            Input | Const0 | Const1 => 0,
            Buf | Not => 1,
            And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 => 2,
            Mux2 | Maj3 | Xor3 => 3,
            And4 | Or4 => 4,
        }
    }

    /// Whether this kind is a real logic cell (as opposed to a primary input
    /// or a constant tie cell).
    #[inline]
    pub fn is_cell(self) -> bool {
        !matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }

    /// Short lowercase cell name, as used in SDF files and statistics.
    pub fn name(self) -> &'static str {
        use GateKind::*;
        match self {
            Input => "input",
            Const0 => "tie0",
            Const1 => "tie1",
            Buf => "buf",
            Not => "inv",
            And2 => "and2",
            Or2 => "or2",
            Nand2 => "nand2",
            Nor2 => "nor2",
            Xor2 => "xor2",
            Xnor2 => "xnor2",
            Mux2 => "mux2",
            Maj3 => "maj3",
            Xor3 => "xor3",
            And4 => "and4",
            Or4 => "or4",
        }
    }

    /// The truth table of this kind as a bit-packed word: bit `i` holds the
    /// output for the pin assignment where pin `p` carries bit `p` of `i`.
    /// Only the low `1 << arity` bits are meaningful; kinds without a logic
    /// function (primary inputs) evaluate to 0.
    ///
    /// This is the lookup-table form the levelized simulator evaluates
    /// cells with: `out = (tt >> pin_index) & 1`, branch-free.
    pub fn truth_table(self) -> u16 {
        let mut tt = 0u16;
        let gate = Gate { kind: self, ins: [Gate::NO_NET; Self::MAX_ARITY] };
        for idx in 0..(1u16 << self.arity()) {
            let pins = [idx & 1 != 0, idx & 2 != 0, idx & 4 != 0, idx & 8 != 0];
            if gate.eval(&pins[..self.arity()]) {
                tt |= 1 << idx;
            }
        }
        tt
    }

    /// All gate kinds, in declaration order.
    pub const ALL: [GateKind; 16] = [
        GateKind::Input,
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Buf,
        GateKind::Not,
        GateKind::And2,
        GateKind::Or2,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::Xor2,
        GateKind::Xnor2,
        GateKind::Mux2,
        GateKind::Maj3,
        GateKind::Xor3,
        GateKind::And4,
        GateKind::Or4,
    ];
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One gate instance: a cell kind plus its input nets.
///
/// A gate drives exactly one net whose [`NetId`] equals the gate's position
/// in the netlist, so no output field is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gate {
    kind: GateKind,
    ins: [NetId; GateKind::MAX_ARITY],
}

impl Gate {
    pub(crate) const NO_NET: NetId = NetId(u32::MAX);

    pub(crate) fn new(kind: GateKind, ins: &[NetId]) -> Self {
        debug_assert_eq!(kind.arity(), ins.len(), "gate arity mismatch for {kind}");
        let mut fixed = [Self::NO_NET; GateKind::MAX_ARITY];
        fixed[..ins.len()].copy_from_slice(ins);
        Gate { kind, ins: fixed }
    }

    /// The cell kind of this gate.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Input nets of this gate, in pin order.
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.ins[..self.kind.arity()]
    }

    /// Computes this gate's output from its input pin values.
    ///
    /// `pins` must hold exactly [`GateKind::arity`] values in pin order.
    /// Primary inputs have no defined logic function and evaluate to `false`
    /// here; the simulator supplies their values externally.
    #[inline]
    pub fn eval(&self, pins: &[bool]) -> bool {
        use GateKind::*;
        match self.kind {
            Input => false,
            Const0 => false,
            Const1 => true,
            Buf => pins[0],
            Not => !pins[0],
            And2 => pins[0] & pins[1],
            Or2 => pins[0] | pins[1],
            Nand2 => !(pins[0] & pins[1]),
            Nor2 => !(pins[0] | pins[1]),
            Xor2 => pins[0] ^ pins[1],
            Xnor2 => !(pins[0] ^ pins[1]),
            Mux2 => {
                if pins[2] {
                    pins[1]
                } else {
                    pins[0]
                }
            }
            Maj3 => (pins[0] & pins[1]) | (pins[0] & pins[2]) | (pins[1] & pins[2]),
            Xor3 => pins[0] ^ pins[1] ^ pins[2],
            And4 => pins[0] & pins[1] & pins[2] & pins[3],
            Or4 => pins[0] | pins[1] | pins[2] | pins[3],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_inputs() {
        for kind in GateKind::ALL {
            assert!(kind.arity() <= GateKind::MAX_ARITY, "{kind} arity too large");
        }
        assert_eq!(GateKind::Mux2.arity(), 3);
        assert_eq!(GateKind::And4.arity(), 4);
        assert_eq!(GateKind::Not.arity(), 1);
        assert_eq!(GateKind::Input.arity(), 0);
        assert!(GateKind::ALL.iter().any(|k| k.arity() == GateKind::MAX_ARITY));
    }

    fn eval(kind: GateKind, pins: &[bool]) -> bool {
        let ids: Vec<NetId> = (0..pins.len()).map(|i| NetId(i as u32)).collect();
        Gate::new(kind, &ids).eval(pins)
    }

    #[test]
    fn truth_tables() {
        use GateKind::*;
        for a in [false, true] {
            assert_eq!(eval(Buf, &[a]), a);
            assert_eq!(eval(Not, &[a]), !a);
            for b in [false, true] {
                assert_eq!(eval(And2, &[a, b]), a & b);
                assert_eq!(eval(Or2, &[a, b]), a | b);
                assert_eq!(eval(Nand2, &[a, b]), !(a & b));
                assert_eq!(eval(Nor2, &[a, b]), !(a | b));
                assert_eq!(eval(Xor2, &[a, b]), a ^ b);
                assert_eq!(eval(Xnor2, &[a, b]), !(a ^ b));
                for c in [false, true] {
                    assert_eq!(eval(Mux2, &[a, b, c]), if c { b } else { a });
                    assert_eq!(eval(Maj3, &[a, b, c]), (a & b) | (a & c) | (b & c));
                    assert_eq!(eval(Xor3, &[a, b, c]), a ^ b ^ c);
                }
            }
        }
        assert!(!eval(Const0, &[]));
        assert!(eval(Const1, &[]));
        for bits in 0..16u16 {
            let pins = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0];
            assert_eq!(eval(And4, &pins), pins.iter().all(|&p| p));
            assert_eq!(eval(Or4, &pins), pins.iter().any(|&p| p));
        }
    }

    #[test]
    fn truth_table_matches_eval() {
        for kind in GateKind::ALL {
            if kind == GateKind::Input {
                assert_eq!(kind.truth_table(), 0);
                continue;
            }
            let tt = kind.truth_table();
            for idx in 0..(1u16 << kind.arity()) {
                let pins = [idx & 1 != 0, idx & 2 != 0, idx & 4 != 0, idx & 8 != 0];
                let expect = eval(kind, &pins[..kind.arity()]);
                assert_eq!((tt >> idx) & 1 == 1, expect, "{kind} at {idx:04b}");
            }
        }
    }

    #[test]
    fn maj3_equals_full_adder_carry() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let carry = (a as u8 + b as u8 + c as u8) >= 2;
                    assert_eq!(eval(GateKind::Maj3, &[a, b, c]), carry);
                    let sum = (a as u8 + b as u8 + c as u8) % 2 == 1;
                    assert_eq!(eval(GateKind::Xor3, &[a, b, c]), sum);
                }
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(GateKind::Nand2.to_string(), "nand2");
        assert_eq!(NetId(7).to_string(), "n7");
    }
}
