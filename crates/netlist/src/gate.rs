//! Gate and net primitives of the netlist IR.

use std::fmt;

/// Identifier of a net (a single-bit signal).
///
/// Every net has exactly one driver, so a `NetId` doubles as the identifier
/// of the gate (or primary input, or constant) that drives it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Raw index of this net inside [`Netlist::gates`](crate::Netlist).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NetId` from a raw index.
    ///
    /// Mostly useful when iterating over all nets of a
    /// [`Netlist`](crate::Netlist) by index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The cell kinds of the library.
///
/// The set mirrors a small standard-cell library: simple one- and two-input
/// cells plus the three compound cells (`Mux2`, `Maj3`, `Xor3`) that a
/// commercial library would map full adders and selectors onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input; its value is applied externally at each cycle.
    Input,
    /// Constant logic `0`.
    Const0,
    /// Constant logic `1`.
    Const1,
    /// Buffer: `y = a`.
    Buf,
    /// Inverter: `y = !a`.
    Not,
    /// Two-input AND.
    And2,
    /// Two-input OR.
    Or2,
    /// Two-input NAND.
    Nand2,
    /// Two-input NOR.
    Nor2,
    /// Two-input XOR.
    Xor2,
    /// Two-input XNOR.
    Xnor2,
    /// Two-to-one multiplexer: inputs `[d0, d1, sel]`, `y = sel ? d1 : d0`.
    Mux2,
    /// Three-input majority (a full adder's carry): `y = ab | ac | bc`.
    Maj3,
    /// Three-input XOR (a full adder's sum): `y = a ^ b ^ c`.
    Xor3,
}

impl GateKind {
    /// Number of input pins of this cell kind.
    #[inline]
    pub fn arity(self) -> usize {
        use GateKind::*;
        match self {
            Input | Const0 | Const1 => 0,
            Buf | Not => 1,
            And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 => 2,
            Mux2 | Maj3 | Xor3 => 3,
        }
    }

    /// Whether this kind is a real logic cell (as opposed to a primary input
    /// or a constant tie cell).
    #[inline]
    pub fn is_cell(self) -> bool {
        !matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }

    /// Short lowercase cell name, as used in SDF files and statistics.
    pub fn name(self) -> &'static str {
        use GateKind::*;
        match self {
            Input => "input",
            Const0 => "tie0",
            Const1 => "tie1",
            Buf => "buf",
            Not => "inv",
            And2 => "and2",
            Or2 => "or2",
            Nand2 => "nand2",
            Nor2 => "nor2",
            Xor2 => "xor2",
            Xnor2 => "xnor2",
            Mux2 => "mux2",
            Maj3 => "maj3",
            Xor3 => "xor3",
        }
    }

    /// All gate kinds, in declaration order.
    pub const ALL: [GateKind; 14] = [
        GateKind::Input,
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Buf,
        GateKind::Not,
        GateKind::And2,
        GateKind::Or2,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::Xor2,
        GateKind::Xnor2,
        GateKind::Mux2,
        GateKind::Maj3,
        GateKind::Xor3,
    ];
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One gate instance: a cell kind plus its input nets.
///
/// A gate drives exactly one net whose [`NetId`] equals the gate's position
/// in the netlist, so no output field is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gate {
    kind: GateKind,
    ins: [NetId; 3],
}

impl Gate {
    pub(crate) const NO_NET: NetId = NetId(u32::MAX);

    pub(crate) fn new(kind: GateKind, ins: &[NetId]) -> Self {
        debug_assert_eq!(kind.arity(), ins.len(), "gate arity mismatch for {kind}");
        let mut fixed = [Self::NO_NET; 3];
        fixed[..ins.len()].copy_from_slice(ins);
        Gate { kind, ins: fixed }
    }

    /// The cell kind of this gate.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Input nets of this gate, in pin order.
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.ins[..self.kind.arity()]
    }

    /// Computes this gate's output from its input pin values.
    ///
    /// `pins` must hold exactly [`GateKind::arity`] values in pin order.
    /// Primary inputs have no defined logic function and evaluate to `false`
    /// here; the simulator supplies their values externally.
    #[inline]
    pub fn eval(&self, pins: &[bool]) -> bool {
        use GateKind::*;
        match self.kind {
            Input => false,
            Const0 => false,
            Const1 => true,
            Buf => pins[0],
            Not => !pins[0],
            And2 => pins[0] & pins[1],
            Or2 => pins[0] | pins[1],
            Nand2 => !(pins[0] & pins[1]),
            Nor2 => !(pins[0] | pins[1]),
            Xor2 => pins[0] ^ pins[1],
            Xnor2 => !(pins[0] ^ pins[1]),
            Mux2 => {
                if pins[2] {
                    pins[1]
                } else {
                    pins[0]
                }
            }
            Maj3 => (pins[0] & pins[1]) | (pins[0] & pins[2]) | (pins[1] & pins[2]),
            Xor3 => pins[0] ^ pins[1] ^ pins[2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_inputs() {
        for kind in GateKind::ALL {
            assert!(kind.arity() <= 3, "{kind} arity too large");
        }
        assert_eq!(GateKind::Mux2.arity(), 3);
        assert_eq!(GateKind::Not.arity(), 1);
        assert_eq!(GateKind::Input.arity(), 0);
    }

    fn eval(kind: GateKind, pins: &[bool]) -> bool {
        let ids: Vec<NetId> = (0..pins.len()).map(|i| NetId(i as u32)).collect();
        Gate::new(kind, &ids).eval(pins)
    }

    #[test]
    fn truth_tables() {
        use GateKind::*;
        for a in [false, true] {
            assert_eq!(eval(Buf, &[a]), a);
            assert_eq!(eval(Not, &[a]), !a);
            for b in [false, true] {
                assert_eq!(eval(And2, &[a, b]), a & b);
                assert_eq!(eval(Or2, &[a, b]), a | b);
                assert_eq!(eval(Nand2, &[a, b]), !(a & b));
                assert_eq!(eval(Nor2, &[a, b]), !(a | b));
                assert_eq!(eval(Xor2, &[a, b]), a ^ b);
                assert_eq!(eval(Xnor2, &[a, b]), !(a ^ b));
                for c in [false, true] {
                    assert_eq!(eval(Mux2, &[a, b, c]), if c { b } else { a });
                    assert_eq!(eval(Maj3, &[a, b, c]), (a & b) | (a & c) | (b & c));
                    assert_eq!(eval(Xor3, &[a, b, c]), a ^ b ^ c);
                }
            }
        }
        assert!(!eval(Const0, &[]));
        assert!(eval(Const1, &[]));
    }

    #[test]
    fn maj3_equals_full_adder_carry() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let carry = (a as u8 + b as u8 + c as u8) >= 2;
                    assert_eq!(eval(GateKind::Maj3, &[a, b, c]), carry);
                    let sum = (a as u8 + b as u8 + c as u8) % 2 == 1;
                    assert_eq!(eval(GateKind::Xor3, &[a, b, c]), sum);
                }
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(GateKind::Nand2.to_string(), "nand2");
        assert_eq!(NetId(7).to_string(), "n7");
    }
}
