//! Incremental construction of [`Netlist`]s.

use crate::gate::{Gate, GateKind, NetId};
use crate::netlist::{Netlist, PortGroup};

/// Builds a [`Netlist`] gate by gate.
///
/// The builder hands out [`NetId`]s as gates are added; because a gate can
/// only reference nets that already exist, the resulting gate list is
/// topologically sorted by construction.
///
/// Constant nets are interned: repeated calls to [`Self::constant`] return
/// the same net.
///
/// # Examples
///
/// ```
/// use tevot_netlist::{words, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("adder4");
/// let a = b.input_bus("a", 4);
/// let c = b.input_bus("b", 4);
/// let zero = b.constant(false);
/// let (sum, carry) = words::rca_add(&mut b, &a, &c, zero);
/// b.output_bus("sum", &sum);
/// b.output("carry", carry);
/// let nl = b.finish();
/// assert_eq!(nl.output_ports().len(), 2);
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    input_ports: Vec<PortGroup>,
    output_ports: Vec<PortGroup>,
    const0: Option<NetId>,
    const1: Option<NetId>,
}

impl NetlistBuilder {
    /// Creates an empty builder for a circuit called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            input_ports: Vec::new(),
            output_ports: Vec::new(),
            const0: None,
            const1: None,
        }
    }

    fn push(&mut self, kind: GateKind, ins: &[NetId]) -> NetId {
        for &n in ins {
            assert!(
                n.index() < self.gates.len(),
                "net {n} does not exist yet in circuit {}",
                self.name
            );
        }
        let id = NetId::from_index(self.gates.len());
        self.gates.push(Gate::new(kind, ins));
        id
    }

    /// Declares a single-bit primary input named `name`.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let nets = self.input_bus(name, 1);
        nets[0]
    }

    /// Declares a `width`-bit primary-input bus (LSB first).
    pub fn input_bus(&mut self, name: impl Into<String>, width: usize) -> Vec<NetId> {
        let nets: Vec<NetId> = (0..width).map(|_| self.push(GateKind::Input, &[])).collect();
        self.inputs.extend_from_slice(&nets);
        self.input_ports.push(PortGroup::new(name, nets.clone()));
        nets
    }

    /// Declares `net` as a single-bit primary output named `name`.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        self.output_bus(name, std::slice::from_ref(&net));
    }

    /// Declares `nets` (LSB first) as a primary-output bus named `name`.
    ///
    /// # Panics
    ///
    /// Panics if any net does not exist.
    pub fn output_bus(&mut self, name: impl Into<String>, nets: &[NetId]) {
        for &n in nets {
            assert!(n.index() < self.gates.len(), "output net {n} does not exist");
        }
        self.outputs.extend_from_slice(nets);
        self.output_ports.push(PortGroup::new(name, nets.to_vec()));
    }

    /// The interned constant net for `value`.
    pub fn constant(&mut self, value: bool) -> NetId {
        if value {
            if let Some(n) = self.const1 {
                return n;
            }
            let n = self.push(GateKind::Const1, &[]);
            self.const1 = Some(n);
            n
        } else {
            if let Some(n) = self.const0 {
                return n;
            }
            let n = self.push(GateKind::Const0, &[]);
            self.const0 = Some(n);
            n
        }
    }

    /// Adds a buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.push(GateKind::Buf, &[a])
    }

    /// Adds an inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.push(GateKind::Not, &[a])
    }

    /// Adds a two-input AND.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::And2, &[a, b])
    }

    /// Adds a two-input OR.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Or2, &[a, b])
    }

    /// Adds a two-input NAND.
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Nand2, &[a, b])
    }

    /// Adds a two-input NOR.
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Nor2, &[a, b])
    }

    /// Adds a two-input XOR.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Xor2, &[a, b])
    }

    /// Adds a two-input XNOR.
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Xnor2, &[a, b])
    }

    /// Adds a 2:1 multiplexer selecting `d1` when `sel` is high, `d0`
    /// otherwise.
    pub fn mux(&mut self, sel: NetId, d0: NetId, d1: NetId) -> NetId {
        self.push(GateKind::Mux2, &[d0, d1, sel])
    }

    /// Adds a three-input majority gate (full-adder carry).
    pub fn maj(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.push(GateKind::Maj3, &[a, b, c])
    }

    /// Adds a three-input XOR (full-adder sum).
    pub fn xor3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.push(GateKind::Xor3, &[a, b, c])
    }

    /// Adds a four-input AND.
    pub fn and4(&mut self, a: NetId, b: NetId, c: NetId, d: NetId) -> NetId {
        self.push(GateKind::And4, &[a, b, c, d])
    }

    /// Adds a four-input OR.
    pub fn or4(&mut self, a: NetId, b: NetId, c: NetId, d: NetId) -> NetId {
        self.push(GateKind::Or4, &[a, b, c, d])
    }

    /// Number of nets created so far.
    pub fn num_nets(&self) -> usize {
        self.gates.len()
    }

    /// Consumes the builder and produces the finished [`Netlist`].
    ///
    /// # Panics
    ///
    /// Panics if no primary output was declared; a circuit without outputs
    /// is always a construction bug.
    pub fn finish(self) -> Netlist {
        assert!(!self.outputs.is_empty(), "circuit {} has no primary outputs", self.name);
        let nl = Netlist {
            name: self.name,
            gates: self.gates,
            inputs: self.inputs,
            outputs: self.outputs,
            input_ports: self.input_ports,
            output_ports: self.output_ports,
        };
        debug_assert_eq!(nl.validate(), Ok(()));
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_interned() {
        let mut b = NetlistBuilder::new("c");
        let z1 = b.constant(false);
        let z2 = b.constant(false);
        let o1 = b.constant(true);
        assert_eq!(z1, z2);
        assert_ne!(z1, o1);
        b.output("z", z1);
        let nl = b.finish();
        assert_eq!(nl.num_nets(), 2);
        assert_eq!(nl.evaluate(&[]), vec![false]);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_reference_panics() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let ghost = NetId::from_index(100);
        let _ = b.and(a, ghost);
    }

    #[test]
    #[should_panic(expected = "no primary outputs")]
    fn missing_outputs_panics() {
        let mut b = NetlistBuilder::new("noout");
        let _ = b.input("a");
        let _ = b.finish();
    }

    #[test]
    fn wide_gates_evaluate() {
        let mut b = NetlistBuilder::new("wide");
        let ins: Vec<NetId> = (0..4).map(|i| b.input(format!("i{i}"))).collect();
        let all = b.and4(ins[0], ins[1], ins[2], ins[3]);
        let any = b.or4(ins[0], ins[1], ins[2], ins[3]);
        b.output("all", all);
        b.output("any", any);
        let nl = b.finish();
        assert_eq!(nl.max_fan_in(), 4);
        for bits in 0..16u16 {
            let pins: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let out = nl.evaluate(&pins);
            assert_eq!(out[0], bits == 15, "and4 at {bits:04b}");
            assert_eq!(out[1], bits != 0, "or4 at {bits:04b}");
        }
    }

    #[test]
    fn mux_pin_order() {
        let mut b = NetlistBuilder::new("m");
        let s = b.input("s");
        let d0 = b.input("d0");
        let d1 = b.input("d1");
        let y = b.mux(s, d0, d1);
        b.output("y", y);
        let nl = b.finish();
        // sel=0 -> d0
        assert_eq!(nl.evaluate(&[false, true, false]), vec![true]);
        // sel=1 -> d1
        assert_eq!(nl.evaluate(&[true, true, false]), vec![false]);
    }
}
