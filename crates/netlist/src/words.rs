//! Word-level circuit combinators.
//!
//! All functions operate on *buses*: slices of [`NetId`] ordered
//! least-significant bit first. They append gates to a
//! [`NetlistBuilder`] and return the nets of the result.
//!
//! # Panics
//!
//! Unless stated otherwise, functions taking two buses panic when the bus
//! widths differ, and all functions panic when handed an empty bus; both are
//! construction bugs.

use crate::builder::NetlistBuilder;
use crate::gate::NetId;

fn check_same_width(xs: &[NetId], ys: &[NetId], op: &str) {
    assert_eq!(xs.len(), ys.len(), "{op}: bus widths differ ({} vs {})", xs.len(), ys.len());
    assert!(!xs.is_empty(), "{op}: empty bus");
}

/// Emits a constant bus holding `value` (least-significant bit first).
///
/// # Panics
///
/// Panics if `width` is 0 or exceeds 128, or if `value` does not fit.
pub fn const_bus(b: &mut NetlistBuilder, value: u128, width: usize) -> Vec<NetId> {
    assert!(width > 0 && width <= 128, "const_bus width {width} out of range");
    if width < 128 {
        assert!(value < (1u128 << width), "const_bus value does not fit in {width} bits");
    }
    (0..width).map(|i| b.constant(value >> i & 1 == 1)).collect()
}

/// Bitwise NOT of a bus.
pub fn not_bus(b: &mut NetlistBuilder, xs: &[NetId]) -> Vec<NetId> {
    xs.iter().map(|&x| b.not(x)).collect()
}

/// Element-wise AND of two equal-width buses.
pub fn and_bus(b: &mut NetlistBuilder, xs: &[NetId], ys: &[NetId]) -> Vec<NetId> {
    check_same_width(xs, ys, "and_bus");
    xs.iter().zip(ys).map(|(&x, &y)| b.and(x, y)).collect()
}

/// Element-wise OR of two equal-width buses.
pub fn or_bus(b: &mut NetlistBuilder, xs: &[NetId], ys: &[NetId]) -> Vec<NetId> {
    check_same_width(xs, ys, "or_bus");
    xs.iter().zip(ys).map(|(&x, &y)| b.or(x, y)).collect()
}

/// Element-wise XOR of two equal-width buses.
pub fn xor_bus(b: &mut NetlistBuilder, xs: &[NetId], ys: &[NetId]) -> Vec<NetId> {
    check_same_width(xs, ys, "xor_bus");
    xs.iter().zip(ys).map(|(&x, &y)| b.xor(x, y)).collect()
}

/// ANDs every bit of `xs` with the single net `bit` (bus masking).
pub fn mask_bus(b: &mut NetlistBuilder, xs: &[NetId], bit: NetId) -> Vec<NetId> {
    xs.iter().map(|&x| b.and(x, bit)).collect()
}

/// Bus-wide 2:1 multiplexer: `sel ? when1 : when0`.
pub fn mux_bus(b: &mut NetlistBuilder, sel: NetId, when0: &[NetId], when1: &[NetId]) -> Vec<NetId> {
    check_same_width(when0, when1, "mux_bus");
    when0.iter().zip(when1).map(|(&d0, &d1)| b.mux(sel, d0, d1)).collect()
}

/// Half adder: returns `(sum, carry)`.
pub fn half_adder(b: &mut NetlistBuilder, x: NetId, y: NetId) -> (NetId, NetId) {
    (b.xor(x, y), b.and(x, y))
}

/// Full adder mapped onto the library's compound cells: `(sum, carry)`.
pub fn full_adder(b: &mut NetlistBuilder, x: NetId, y: NetId, c: NetId) -> (NetId, NetId) {
    (b.xor3(x, y, c), b.maj(x, y, c))
}

/// Ripple-carry adder: `xs + ys + cin`, returning `(sum, carry_out)`.
///
/// The classic workload-sensitive adder: its sensitized path length equals
/// the longest carry chain of the actual operands, which is what makes
/// dynamic delay depend so strongly on input data (paper Sec. III).
pub fn rca_add(
    b: &mut NetlistBuilder,
    xs: &[NetId],
    ys: &[NetId],
    cin: NetId,
) -> (Vec<NetId>, NetId) {
    check_same_width(xs, ys, "rca_add");
    let mut carry = cin;
    let mut sum = Vec::with_capacity(xs.len());
    for (&x, &y) in xs.iter().zip(ys) {
        let (s, c) = full_adder(b, x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Ripple-borrow subtractor: `xs - ys`, returning `(difference, not_borrow)`.
///
/// `not_borrow` is high iff `xs >= ys`, making this the canonical unsigned
/// comparator as well.
pub fn rca_sub(b: &mut NetlistBuilder, xs: &[NetId], ys: &[NetId]) -> (Vec<NetId>, NetId) {
    check_same_width(xs, ys, "rca_sub");
    let ny = not_bus(b, ys);
    let one = b.constant(true);
    rca_add(b, xs, &ny, one)
}

/// Carry-lookahead adder with 4-bit blocks: `xs + ys + cin`.
///
/// Internally each block still derives its bit carries with the
/// `c[i+1] = g[i] | p[i]c[i]` recurrence, but the inter-block carry skips
/// ahead through block generate/propagate terms, flattening the worst-case
/// carry chain from `W` to roughly `W/4` cells.
pub fn cla_add(
    b: &mut NetlistBuilder,
    xs: &[NetId],
    ys: &[NetId],
    cin: NetId,
) -> (Vec<NetId>, NetId) {
    check_same_width(xs, ys, "cla_add");
    let w = xs.len();
    let p: Vec<NetId> = xs.iter().zip(ys).map(|(&x, &y)| b.xor(x, y)).collect();
    let g: Vec<NetId> = xs.iter().zip(ys).map(|(&x, &y)| b.and(x, y)).collect();
    let mut sum = Vec::with_capacity(w);
    let mut block_cin = cin;
    let mut lo = 0;
    while lo < w {
        let hi = (lo + 4).min(w);
        // Block generate/propagate (computed in parallel with the ripple).
        let mut bp = p[lo];
        let mut bg = g[lo];
        for i in lo + 1..hi {
            bp = b.and(bp, p[i]);
            let t = b.and(p[i], bg);
            bg = b.or(g[i], t);
        }
        // Bit carries within the block ripple from the block carry-in.
        let mut c = block_cin;
        for i in lo..hi {
            sum.push(b.xor(p[i], c));
            if i + 1 < hi {
                let t = b.and(p[i], c);
                c = b.or(g[i], t);
            }
        }
        // Next block's carry-in skips through (bg, bp).
        let t = b.and(bp, block_cin);
        block_cin = b.or(bg, t);
        lo = hi;
    }
    (sum, block_cin)
}

/// Kogge-Stone parallel-prefix adder: `xs + ys + cin`.
///
/// Carry depth is `log2(W)` prefix levels regardless of the operands'
/// carry-propagate run lengths — the topology timing-driven synthesis
/// converges to, and the reason synthesized adders show no extreme
/// data-dependent delay outliers.
pub fn kogge_stone_add(
    b: &mut NetlistBuilder,
    xs: &[NetId],
    ys: &[NetId],
    cin: NetId,
) -> (Vec<NetId>, NetId) {
    check_same_width(xs, ys, "kogge_stone_add");
    let w = xs.len();
    let p0: Vec<NetId> = xs.iter().zip(ys).map(|(&x, &y)| b.xor(x, y)).collect();
    // Fold the carry-in into bit 0's generate/propagate pair.
    let mut g: Vec<NetId> = xs.iter().zip(ys).map(|(&x, &y)| b.and(x, y)).collect();
    let mut p = p0.clone();
    {
        let t = b.and(p[0], cin);
        g[0] = b.or(g[0], t);
        let zero = b.constant(false);
        p[0] = zero;
    }
    let mut k = 1;
    while k < w {
        let mut next_g = g.clone();
        let mut next_p = p.clone();
        for i in k..w {
            let t = b.and(p[i], g[i - k]);
            next_g[i] = b.or(g[i], t);
            next_p[i] = b.and(p[i], p[i - k]);
        }
        g = next_g;
        p = next_p;
        k <<= 1;
    }
    // Carry into bit i is the group generate of bits 0..i.
    let mut sum = Vec::with_capacity(w);
    sum.push(b.xor(p0[0], cin));
    for i in 1..w {
        sum.push(b.xor(p0[i], g[i - 1]));
    }
    (sum, g[w - 1])
}

/// Carry-save reduction of equal-width addend rows into a redundant
/// `(sum, carry)` pair, where `carry` carries weight `j + 1` at index `j`
/// (add it left-shifted by one to materialize the result).
///
/// # Panics
///
/// Panics if `rows` is empty or the rows have differing widths.
pub fn csa_reduce(b: &mut NetlistBuilder, rows: &[Vec<NetId>]) -> (Vec<NetId>, Vec<NetId>) {
    assert!(!rows.is_empty(), "csa_reduce: no rows");
    let w = rows[0].len();
    assert!(rows.iter().all(|r| r.len() == w), "csa_reduce: row widths differ");
    let zero = b.constant(false);
    let mut acc_s = rows[0].clone();
    let mut acc_c = vec![zero; w];
    for row in &rows[1..] {
        let mut next_s = Vec::with_capacity(w);
        let mut next_c = Vec::with_capacity(w);
        for j in 0..w {
            let carry_in = if j > 0 { acc_c[j - 1] } else { zero };
            let (s, c) = full_adder(b, acc_s[j], carry_in, row[j]);
            next_s.push(s);
            next_c.push(c);
        }
        acc_s = next_s;
        acc_c = next_c;
    }
    (acc_s, acc_c)
}

/// Kogge-Stone subtractor: `xs - ys`, returning `(difference, not_borrow)`
/// with the same semantics as [`rca_sub`] but logarithmic carry depth.
pub fn kogge_stone_sub(b: &mut NetlistBuilder, xs: &[NetId], ys: &[NetId]) -> (Vec<NetId>, NetId) {
    check_same_width(xs, ys, "kogge_stone_sub");
    let ny = not_bus(b, ys);
    let one = b.constant(true);
    kogge_stone_add(b, xs, &ny, one)
}

/// Ripple incrementer: `xs + 1`, returning `(sum, carry_out)`. Carry depth
/// grows with the length of the low-order run of ones; prefer
/// [`prefix_incrementer`] inside balanced datapaths.
pub fn incrementer(b: &mut NetlistBuilder, xs: &[NetId]) -> (Vec<NetId>, NetId) {
    assert!(!xs.is_empty(), "incrementer: empty bus");
    let mut carry = b.constant(true);
    let mut sum = Vec::with_capacity(xs.len());
    for &x in xs {
        let (s, c) = half_adder(b, x, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Parallel-prefix incrementer: `xs + 1` with `log2(W)` carry depth
/// (the carry into bit `i` is the AND of bits `0..i`, computed as a
/// Kogge-Stone-style prefix-AND tree).
pub fn prefix_incrementer(b: &mut NetlistBuilder, xs: &[NetId]) -> (Vec<NetId>, NetId) {
    assert!(!xs.is_empty(), "prefix_incrementer: empty bus");
    let w = xs.len();
    // prefix[i] = AND of xs[0..=i].
    let mut prefix = xs.to_vec();
    let mut k = 1;
    while k < w {
        for i in (k..w).rev() {
            prefix[i] = b.and(prefix[i], prefix[i - k]);
        }
        k <<= 1;
    }
    let mut sum = Vec::with_capacity(w);
    sum.push(b.not(xs[0]));
    for i in 1..w {
        sum.push(b.xor(xs[i], prefix[i - 1]));
    }
    (sum, prefix[w - 1])
}

/// Balanced OR-reduction tree over a bus.
pub fn or_reduce(b: &mut NetlistBuilder, xs: &[NetId]) -> NetId {
    reduce(b, xs, NetlistBuilder::or)
}

/// Balanced AND-reduction tree over a bus.
pub fn and_reduce(b: &mut NetlistBuilder, xs: &[NetId]) -> NetId {
    reduce(b, xs, NetlistBuilder::and)
}

fn reduce(
    b: &mut NetlistBuilder,
    xs: &[NetId],
    mut op: impl FnMut(&mut NetlistBuilder, NetId, NetId) -> NetId,
) -> NetId {
    assert!(!xs.is_empty(), "reduce: empty bus");
    let mut level = xs.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(if pair.len() == 2 { op(b, pair[0], pair[1]) } else { pair[0] });
        }
        level = next;
    }
    level[0]
}

/// High iff the bus value is zero.
pub fn is_zero(b: &mut NetlistBuilder, xs: &[NetId]) -> NetId {
    let any = or_reduce(b, xs);
    b.not(any)
}

/// Zero-extends a bus to `width` bits.
///
/// # Panics
///
/// Panics if `width` is smaller than the bus.
pub fn zero_extend(b: &mut NetlistBuilder, xs: &[NetId], width: usize) -> Vec<NetId> {
    assert!(width >= xs.len(), "zero_extend: target narrower than bus");
    let zero = b.constant(false);
    let mut out = xs.to_vec();
    out.resize(width, zero);
    out
}

/// Logical barrel shifter right by a variable amount, collecting the OR of
/// all shifted-out bits into a *sticky* flag (IEEE-754 alignment-shift
/// idiom).
///
/// `amount` is an LSB-first bus; shifts up to `2^amount.len() - 1` are
/// representable, and shifting by at least the bus width yields an all-zero
/// bus with the sticky flag set iff the input was non-zero.
pub fn shift_right_sticky(
    b: &mut NetlistBuilder,
    xs: &[NetId],
    amount: &[NetId],
) -> (Vec<NetId>, NetId) {
    assert!(!xs.is_empty() && !amount.is_empty(), "shift_right_sticky: empty bus");
    let zero = b.constant(false);
    let mut cur = xs.to_vec();
    let mut sticky = zero;
    for (j, &abit) in amount.iter().enumerate() {
        let k = 1usize << j;
        if k >= cur.len() {
            // Shifting by k wipes the whole word.
            let lost = or_reduce(b, &cur);
            let lost_now = b.and(lost, abit);
            sticky = b.or(sticky, lost_now);
            let zeros = vec![zero; cur.len()];
            cur = mux_bus(b, abit, &cur, &zeros);
            continue;
        }
        let shifted: Vec<NetId> =
            (0..cur.len()).map(|i| if i + k < cur.len() { cur[i + k] } else { zero }).collect();
        let lost = or_reduce(b, &cur[..k]);
        let lost_now = b.and(lost, abit);
        sticky = b.or(sticky, lost_now);
        cur = mux_bus(b, abit, &cur, &shifted);
    }
    (cur, sticky)
}

/// Logical barrel shifter left by a variable amount (LSB-first `amount`).
pub fn shift_left(b: &mut NetlistBuilder, xs: &[NetId], amount: &[NetId]) -> Vec<NetId> {
    assert!(!xs.is_empty() && !amount.is_empty(), "shift_left: empty bus");
    let zero = b.constant(false);
    let mut cur = xs.to_vec();
    for (j, &abit) in amount.iter().enumerate() {
        let k = 1usize << j;
        let shifted: Vec<NetId> =
            (0..cur.len()).map(|i| if i >= k { cur[i - k] } else { zero }).collect();
        cur = mux_bus(b, abit, &cur, &shifted);
    }
    cur
}

/// Left-normalizes a bus: shifts left until the most-significant bit is set,
/// returning `(normalized, shift_amount)` with the shift amount LSB first.
///
/// This is the combined leading-zero-count + barrel-shift idiom used by
/// floating-point normalization. For an all-zero input the shift amount
/// saturates; callers must handle the zero case via a separate flag.
pub fn normalize_left(b: &mut NetlistBuilder, xs: &[NetId]) -> (Vec<NetId>, Vec<NetId>) {
    assert!(!xs.is_empty(), "normalize_left: empty bus");
    let w = xs.len();
    let mut stages = Vec::new();
    let mut k = 1usize;
    while k < w {
        stages.push(k);
        k <<= 1;
    }
    let zero = b.constant(false);
    let mut cur = xs.to_vec();
    let mut amount = vec![zero; stages.len()];
    for (&k, slot) in stages.iter().rev().zip((0..stages.len()).rev()) {
        // Top k bits all zero?
        let top_any = or_reduce(b, &cur[w - k..]);
        let do_shift = b.not(top_any);
        let shifted: Vec<NetId> = (0..w).map(|i| if i >= k { cur[i - k] } else { zero }).collect();
        cur = mux_bus(b, do_shift, &cur, &shifted);
        amount[slot] = do_shift;
    }
    (cur, amount)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn to_bits(value: u64, width: usize) -> Vec<bool> {
        (0..width).map(|i| value >> i & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (b as u64) << i)
    }

    #[test]
    fn const_bus_roundtrip() {
        let mut b = NetlistBuilder::new("c");
        let bus = const_bus(&mut b, 0b1011, 4);
        b.output_bus("v", &bus);
        let nl = b.finish();
        assert_eq!(from_bits(&nl.evaluate(&[])), 0b1011);
    }

    #[test]
    fn rca_add_matches_arithmetic() {
        let mut b = NetlistBuilder::new("add8");
        let xs = b.input_bus("a", 8);
        let ys = b.input_bus("b", 8);
        let zero = b.constant(false);
        let (sum, cout) = rca_add(&mut b, &xs, &ys, zero);
        b.output_bus("s", &sum);
        b.output("c", cout);
        let nl = b.finish();
        for (a, c) in [(0u64, 0u64), (255, 1), (170, 85), (200, 100), (255, 255)] {
            let mut input = to_bits(a, 8);
            input.extend(to_bits(c, 8));
            let out = nl.evaluate(&input);
            let got = from_bits(&out);
            assert_eq!(got, a + c, "{a} + {c}");
        }
    }

    #[test]
    fn kogge_stone_matches_arithmetic() {
        let mut b = NetlistBuilder::new("ks11");
        let xs = b.input_bus("a", 11);
        let ys = b.input_bus("b", 11);
        let cin = b.input("cin");
        let (sum, cout) = kogge_stone_add(&mut b, &xs, &ys, cin);
        b.output_bus("s", &sum);
        b.output("c", cout);
        let nl = b.finish();
        for (a, c) in [(0u64, 0u64), (2047, 1), (1024, 1024), (1365, 682), (2047, 2047), (99, 1900)]
        {
            for carry in [0u64, 1] {
                let mut input = to_bits(a, 11);
                input.extend(to_bits(c, 11));
                input.push(carry == 1);
                let got = from_bits(&nl.evaluate(&input));
                assert_eq!(got, a + c + carry, "{a} + {c} + {carry}");
            }
        }
    }

    #[test]
    fn kogge_stone_is_shallow() {
        let build = |ks: bool| {
            let mut b = NetlistBuilder::new("d");
            let xs = b.input_bus("a", 32);
            let ys = b.input_bus("b", 32);
            let zero = b.constant(false);
            let (sum, cout) = if ks {
                kogge_stone_add(&mut b, &xs, &ys, zero)
            } else {
                rca_add(&mut b, &xs, &ys, zero)
            };
            b.output_bus("s", &sum);
            b.output("c", cout);
            b.finish().depth()
        };
        let ks_depth = build(true);
        let rca_depth = build(false);
        assert!(ks_depth * 2 < rca_depth, "KS depth {ks_depth} vs RCA {rca_depth}");
        assert!(ks_depth <= 14, "KS depth {ks_depth} should be ~2 log2(32) + setup");
    }

    #[test]
    fn cla_add_matches_rca() {
        let mut b = NetlistBuilder::new("cla13");
        let xs = b.input_bus("a", 13);
        let ys = b.input_bus("b", 13);
        let zero = b.constant(false);
        let (sum, cout) = cla_add(&mut b, &xs, &ys, zero);
        b.output_bus("s", &sum);
        b.output("c", cout);
        let nl = b.finish();
        for (a, c) in [(0u64, 0), (8191, 1), (4096, 4096), (5461, 2730), (8191, 8191), (123, 7000)]
        {
            let mut input = to_bits(a, 13);
            input.extend(to_bits(c, 13));
            let got = from_bits(&nl.evaluate(&input));
            assert_eq!(got, a + c, "{a} + {c}");
        }
    }

    #[test]
    fn rca_sub_compares() {
        let mut b = NetlistBuilder::new("sub8");
        let xs = b.input_bus("a", 8);
        let ys = b.input_bus("b", 8);
        let (diff, ge) = rca_sub(&mut b, &xs, &ys);
        b.output_bus("d", &diff);
        b.output("ge", ge);
        let nl = b.finish();
        for (a, c) in [(10u64, 3u64), (3, 10), (200, 200), (0, 255), (255, 0)] {
            let mut input = to_bits(a, 8);
            input.extend(to_bits(c, 8));
            let out = nl.evaluate(&input);
            assert_eq!(from_bits(&out[..8]), a.wrapping_sub(c) & 0xFF, "{a} - {c}");
            assert_eq!(out[8], a >= c, "ge({a},{c})");
        }
    }

    #[test]
    fn prefix_incrementer_matches_ripple() {
        let mut b = NetlistBuilder::new("pinc9");
        let xs = b.input_bus("a", 9);
        let (sum, cout) = prefix_incrementer(&mut b, &xs);
        b.output_bus("s", &sum);
        b.output("c", cout);
        let nl = b.finish();
        for a in 0..512u64 {
            let out = nl.evaluate(&to_bits(a, 9));
            assert_eq!(from_bits(&out[..9]), (a + 1) & 0x1FF, "{a} + 1");
            assert_eq!(out[9], a == 511);
        }
    }

    #[test]
    fn incrementer_wraps() {
        let mut b = NetlistBuilder::new("inc4");
        let xs = b.input_bus("a", 4);
        let (sum, cout) = incrementer(&mut b, &xs);
        b.output_bus("s", &sum);
        b.output("c", cout);
        let nl = b.finish();
        for a in 0..16u64 {
            let out = nl.evaluate(&to_bits(a, 4));
            assert_eq!(from_bits(&out[..4]), (a + 1) & 0xF);
            assert_eq!(out[4], a == 15);
        }
    }

    #[test]
    fn reductions() {
        let mut b = NetlistBuilder::new("red");
        let xs = b.input_bus("a", 5);
        let any = or_reduce(&mut b, &xs);
        let all = and_reduce(&mut b, &xs);
        let zero = is_zero(&mut b, &xs);
        b.output("any", any);
        b.output("all", all);
        b.output("zero", zero);
        let nl = b.finish();
        for v in [0u64, 1, 16, 31, 21] {
            let out = nl.evaluate(&to_bits(v, 5));
            assert_eq!(out[0], v != 0);
            assert_eq!(out[1], v == 31);
            assert_eq!(out[2], v == 0);
        }
    }

    #[test]
    fn shift_right_sticky_matches_reference() {
        let mut b = NetlistBuilder::new("shr");
        let xs = b.input_bus("a", 12);
        let amt = b.input_bus("k", 4);
        let (out, sticky) = shift_right_sticky(&mut b, &xs, &amt);
        b.output_bus("o", &out);
        b.output("sticky", sticky);
        let nl = b.finish();
        for v in [0u64, 1, 0xABC, 0xFFF, 0x801] {
            for k in 0..16u64 {
                let mut input = to_bits(v, 12);
                input.extend(to_bits(k, 4));
                let res = nl.evaluate(&input);
                let expect = if k >= 12 { 0 } else { v >> k };
                let lost = v & ((1u64 << k.min(12)) - 1).wrapping_add(0);
                assert_eq!(from_bits(&res[..12]), expect, "{v:#x} >> {k}");
                assert_eq!(res[12], lost != 0, "sticky for {v:#x} >> {k}");
            }
        }
    }

    #[test]
    fn shift_left_matches_reference() {
        let mut b = NetlistBuilder::new("shl");
        let xs = b.input_bus("a", 12);
        let amt = b.input_bus("k", 4);
        let out = shift_left(&mut b, &xs, &amt);
        b.output_bus("o", &out);
        let nl = b.finish();
        for v in [0u64, 1, 0xABC, 0xFFF] {
            for k in 0..16u64 {
                let mut input = to_bits(v, 12);
                input.extend(to_bits(k, 4));
                let res = nl.evaluate(&input);
                let expect = if k >= 12 { 0 } else { (v << k) & 0xFFF };
                assert_eq!(from_bits(&res), expect, "{v:#x} << {k}");
            }
        }
    }

    #[test]
    fn normalize_left_sets_msb() {
        let mut b = NetlistBuilder::new("norm");
        let xs = b.input_bus("a", 11);
        let (out, amount) = normalize_left(&mut b, &xs);
        b.output_bus("o", &out);
        b.output_bus("k", &amount);
        let nl = b.finish();
        for v in [1u64, 2, 3, 0x400, 0x3FF, 0x155, 0x7] {
            let res = nl.evaluate(&to_bits(v, 11));
            let lz = 10 - (63 - v.leading_zeros() as u64);
            let shifted = from_bits(&res[..11]);
            let amount = from_bits(&res[11..]);
            assert_eq!(amount, lz, "lzc of {v:#x}");
            assert_eq!(shifted, (v << lz) & 0x7FF, "normalized {v:#x}");
            assert!(shifted & 0x400 != 0, "msb set for {v:#x}");
        }
    }

    #[test]
    fn mask_and_mux() {
        let mut b = NetlistBuilder::new("mm");
        let xs = b.input_bus("a", 3);
        let ys = b.input_bus("b", 3);
        let sel = b.input("s");
        let masked = mask_bus(&mut b, &xs, sel);
        let muxed = mux_bus(&mut b, sel, &xs, &ys);
        b.output_bus("m", &masked);
        b.output_bus("x", &muxed);
        let nl = b.finish();
        let mut input = to_bits(0b101, 3);
        input.extend(to_bits(0b010, 3));
        input.push(false);
        let out = nl.evaluate(&input);
        assert_eq!(from_bits(&out[..3]), 0);
        assert_eq!(from_bits(&out[3..]), 0b101);
        *input.last_mut().unwrap() = true;
        let out = nl.evaluate(&input);
        assert_eq!(from_bits(&out[..3]), 0b101);
        assert_eq!(from_bits(&out[3..]), 0b010);
    }
}
