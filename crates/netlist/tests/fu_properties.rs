//! Property tests: the gate-level functional units match their bit-exact
//! reference models on arbitrary inputs, and the FP reference models match
//! native IEEE-754 `f32` arithmetic wherever they claim to.

use proptest::prelude::*;
use tevot_netlist::fu::{golden, FunctionalUnit};

fn eval(nl: &tevot_netlist::Netlist, fu: FunctionalUnit, a: u32, b: u32) -> u64 {
    fu.decode_output(&nl.evaluate(&fu.encode_operands(a, b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn int_add_matches_golden(a: u32, b: u32) {
        let nl = INT_ADD.with(|n| n.clone());
        prop_assert_eq!(eval(&nl, FunctionalUnit::IntAdd, a, b), a as u64 + b as u64);
    }

    #[test]
    fn int_mul_matches_golden(a: u32, b: u32) {
        let nl = INT_MUL.with(|n| n.clone());
        prop_assert_eq!(eval(&nl, FunctionalUnit::IntMul, a, b), a as u64 * b as u64);
    }

    #[test]
    fn booth_multiplier_matches_golden(a: u32, b: u32) {
        let nl = BOOTH_MUL.with(|n| n.clone());
        prop_assert_eq!(eval(&nl, FunctionalUnit::IntMul, a, b), a as u64 * b as u64);
    }

    #[test]
    fn fp_add_circuit_matches_reference(a: u32, b: u32) {
        let nl = FP_ADD.with(|n| n.clone());
        prop_assert_eq!(
            eval(&nl, FunctionalUnit::FpAdd, a, b) as u32,
            golden::fp_add(a, b)
        );
    }

    #[test]
    fn fp_mul_circuit_matches_reference(a: u32, b: u32) {
        let nl = FP_MUL.with(|n| n.clone());
        prop_assert_eq!(
            eval(&nl, FunctionalUnit::FpMul, a, b) as u32,
            golden::fp_mul(a, b)
        );
    }

    /// On normal operands with non-subnormal results the reference adder is
    /// exactly IEEE-754 round-to-nearest-even.
    #[test]
    fn fp_add_reference_matches_f32(a in normal_f32(), b in normal_f32()) {
        let expected = a + b;
        prop_assume!(expected == 0.0 || golden::is_exactly_modeled(expected.to_bits()));
        let got = f32::from_bits(golden::fp_add(a.to_bits(), b.to_bits()));
        if expected == 0.0 && a != 0.0 {
            // Exact cancellation: IEEE RNE gives +0.
            prop_assert_eq!(got.to_bits(), 0u32);
        } else {
            prop_assert_eq!(got.to_bits(), expected.to_bits(), "{} + {}", a, b);
        }
    }

    #[test]
    fn fp_mul_reference_matches_f32(a in normal_f32(), b in normal_f32()) {
        let expected = a * b;
        prop_assume!(golden::is_exactly_modeled(expected.to_bits()) || expected.is_infinite());
        let got = f32::from_bits(golden::fp_mul(a.to_bits(), b.to_bits()));
        prop_assert_eq!(got.to_bits(), expected.to_bits(), "{} * {}", a, b);
    }

    /// The adder is commutative at the bit level.
    #[test]
    fn fp_add_commutes(a: u32, b: u32) {
        prop_assert_eq!(golden::fp_add(a, b), golden::fp_add(b, a));
    }

    #[test]
    fn fp_mul_commutes(a: u32, b: u32) {
        prop_assert_eq!(golden::fp_mul(a, b), golden::fp_mul(b, a));
    }
}

/// Strategy for normal (or zero) finite `f32` values.
fn normal_f32() -> impl Strategy<Value = f32> {
    (any::<bool>(), 1u32..255, any::<u32>())
        .prop_map(|(s, e, f)| f32::from_bits((s as u32) << 31 | e << 23 | (f & 0x7F_FFFF)))
}

thread_local! {
    static INT_ADD: tevot_netlist::Netlist = FunctionalUnit::IntAdd.build();
    static INT_MUL: tevot_netlist::Netlist = FunctionalUnit::IntMul.build();
    static BOOTH_MUL: tevot_netlist::Netlist =
        tevot_netlist::fu::int_mul_with_style(tevot_netlist::fu::MultiplierStyle::Booth);
    static FP_ADD: tevot_netlist::Netlist = FunctionalUnit::FpAdd.build();
    static FP_MUL: tevot_netlist::Netlist = FunctionalUnit::FpMul.build();
}
