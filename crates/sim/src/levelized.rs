//! The bit-parallel levelized simulation engine.
//!
//! Two passes over a topologically levelized netlist replace the
//! event-driven simulator's priority queue (see DESIGN.md §16):
//!
//! 1. **Value propagation, 64 cycles at a time.** Each net holds one `u64`
//!    word whose bit `j` is the net's settled value after input vector `j`
//!    of the current block. One pass in topological order evaluates every
//!    gate with plain word-wide bitwise ops, so one sweep computes the
//!    functional result of 64 cycles. Shifting a word left by one and
//!    carrying in the previous block's settled bit yields each cycle's
//!    *start* value — the state the circuit held at the clock edge.
//! 2. **Arrival-time recovery, gate-major over the sensitized cone.**
//!    Cells are scanned in level-consistent topological order (the builder
//!    guarantees every fan-in has a lower net index, which `new` checks
//!    against [`Netlist::levelize`](tevot_netlist::Netlist::levelize)), so
//!    every fan-in's toggle lists are final before a gate is replayed.
//!    Each gate is visited **once per block**: a per-net activity word
//!    (bit `j` = "toggles in cycle `j`") makes the whole-block skip one
//!    OR over the fan-ins, the fan-in start/activity words are hoisted
//!    into registers, and the gate then replays just its active cycles —
//!    independent work the CPU can overlap. A precomputed subcube-
//!    constancy table additionally skips *non-sensitized* cycles (the
//!    truth table cannot leave its start value while only the active
//!    fan-ins toggle — an AND holding a quiet 0, a mux selecting the
//!    quiet leg), which is where most of a deep circuit's activity dies.
//!    Each remaining replay merges the input
//!    toggle lists in time order and re-derives the gate's own toggles
//!    under the same inertial-delay rules the event-driven engine applies
//!    — which is what makes the two engines **bit-identical** per
//!    [`CycleResult`] (delays, toggle lists, error classes), not merely
//!    statistically close. The event engine stays on as the differential
//!    oracle (`tests/levelized_oracle.rs`).
//!
//! Events are keyed `(time, wave)`: the wave index replicates the event
//! engine's same-timestep commit epochs so that zero-delay cells — which
//! can legitimately toggle a net twice at one instant — replay exactly.
//! Both components pack into one `u64` (`time << 20 | wave`) so the replay
//! loop's merge, supersede, and maturity checks are single integer
//! comparisons; the constructor asserts the netlist and annotation fit the
//! packing (under ~1M nets, total delay mass under 2^43 ps).

use tevot_netlist::{GateKind, Netlist};
use tevot_timing::DelayAnnotation;

use crate::cycle::CycleResult;

/// Selects the simulation engine behind a characterization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The event-driven [`TimingSimulator`](crate::TimingSimulator): the
    /// reference semantics and the differential oracle.
    Event,
    /// The bit-parallel levelized engine — bit-identical results at a
    /// fraction of the cost; the default for sweeps.
    #[default]
    Levelized,
}

impl Engine {
    /// Every engine, in declaration order.
    pub const ALL: [Engine; 2] = [Engine::Event, Engine::Levelized];

    /// The flag spelling (`event` / `levelized`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Event => "event",
            Engine::Levelized => "levelized",
        }
    }

    /// Parses a `--engine` flag value.
    pub fn from_name(name: &str) -> Option<Engine> {
        Engine::ALL.into_iter().find(|e| e.name() == name)
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Low bits of a packed event key hold the same-timestep commit wave; the
/// high 44 hold the picosecond timestamp, so `u64` order is (time, wave)
/// order and `key + 1` is "same instant, next wave".
const WAVE_BITS: u32 = 20;
/// Exhausted-lane marker in the replay merge; unreachable as a real key
/// because the constructor bounds total delay mass below `2^43` ps.
const SENTINEL: u64 = u64::MAX;

/// Flat per-net cell record: input net indices, truth-table word, and
/// propagation delay (pre-shifted into packed-key time position), laid out
/// for the replay loop's access pattern.
#[derive(Debug, Clone, Copy)]
struct PackedCell {
    ins: [u32; GateKind::MAX_ARITY],
    /// `delay_ps << WAVE_BITS`: adding it to a packed key advances the
    /// time field directly; zero means a zero-delay cell.
    delay: u64,
    tt: u16,
    /// Subcube-constancy table: bit `idx` of `con[M]` is set when the
    /// truth table is constant on the subcube through `idx` spanned by
    /// input set `M`. A cycle whose active fan-ins all lie in such an
    /// `M` is *non-sensitized* — no interleaving of its input toggles
    /// can move the output — and the replay skips it outright.
    con: [u16; 1 << GateKind::MAX_ARITY],
    arity: u8,
}

/// The bit-parallel levelized timing simulator.
///
/// Produces the same [`CycleResult`]s as
/// [`TimingSimulator`](crate::TimingSimulator) — same dynamic delays, same
/// output-toggle lists in the same order, same settled words — for the
/// same vector stream started from the same initial state.
///
/// # Examples
///
/// ```
/// use tevot_netlist::fu::FunctionalUnit;
/// use tevot_timing::{DelayModel, OperatingCondition};
/// use tevot_sim::LevelizedSimulator;
///
/// let fu = FunctionalUnit::IntAdd;
/// let nl = fu.build();
/// let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::nominal());
/// let mut sim = LevelizedSimulator::new(&nl, &ann);
/// let cycles = sim.run(&[fu.encode_operands(123, 456)]);
/// assert_eq!(fu.decode_output(cycles[0].settled_outputs()), 579);
/// ```
#[derive(Debug)]
pub struct LevelizedSimulator<'a> {
    netlist: &'a Netlist,
    cells: Vec<PackedCell>,
    /// Output-net positions: `output_slot[net] == k+1` if net is output k.
    output_slot: Vec<u32>,
    inputs: Vec<u32>,
    outputs: Vec<u32>,
    /// Settled value of every net at the current block boundary.
    settled: Vec<bool>,
    /// Pass 1: per-net settled-value words for the current block (bit `j`
    /// = value after vector `j`).
    words: Vec<u64>,
    /// Per-net start-value words: `(words << 1) | previous settled bit`.
    start: Vec<u64>,
    /// Pass 2 arena: committed toggles of the current block as packed
    /// `time << WAVE_BITS | wave` keys, one contiguous slice per
    /// (net, cycle) with events, appended gate-major in topological order.
    /// The vector's length is a high-water mark of pre-sized storage;
    /// [`arena_len`](Self::arena_len) is the logical end, which lets the
    /// replay loop commit with an unconditional store plus a conditional
    /// cursor bump instead of a branchy `push`.
    arena: Vec<u64>,
    arena_len: usize,
    /// Arena slice table, indexed `net << 6 | cycle`, packing
    /// `offset << 32 | length` into one word (one load per lane in the
    /// merge); entries are only meaningful where the net's
    /// [`ev_word`](Self::ev_word) bit is set. The length excludes the
    /// [`SENTINEL`] terminator every list carries.
    ev_sl: Vec<u64>,
    /// Per-net activity mask for the current block: bit `j` is set when
    /// the net toggles at least once in cycle `j` — the whole-block skip
    /// test for a gate is one OR over its fan-ins' masks.
    ev_word: Vec<u64>,
    /// Output toggles of one cycle as `(time << WAVE_BITS | net, slot)` —
    /// the packed first element is exactly the event engine's emission
    /// order, so one stable sort on it reproduces that order.
    out_toggles: Vec<(u64, u32)>,
    replay_evals: u64,
}

impl<'a> LevelizedSimulator<'a> {
    /// Creates a simulator with all primary inputs initially zero and the
    /// circuit fully settled (same initial state as
    /// [`TimingSimulator::new`](crate::TimingSimulator::new)).
    ///
    /// # Panics
    ///
    /// Panics if the annotation was computed for a different netlist size.
    pub fn new(netlist: &'a Netlist, delays: &'a DelayAnnotation) -> Self {
        Self::with_initial_inputs(netlist, delays, &vec![false; netlist.inputs().len()])
    }

    /// Creates a simulator with the circuit settled on `inputs`.
    ///
    /// # Panics
    ///
    /// Panics on netlist/annotation mismatch or wrong input count.
    pub fn with_initial_inputs(
        netlist: &'a Netlist,
        delays: &'a DelayAnnotation,
        inputs: &[bool],
    ) -> Self {
        assert_eq!(
            delays.delays().len(),
            netlist.num_nets(),
            "delay annotation does not match netlist {}",
            netlist.name()
        );
        let settled = netlist.evaluate_nets(inputs);
        // The replay pass scans cells in net-index order and relies on the
        // builder's topological numbering; the levelization pins that the
        // flat order is level-consistent (every fan-in at a lower level or
        // a lower index within the same level's fringe).
        debug_assert!({
            let lv = netlist.levelize();
            netlist.gates().iter().enumerate().all(|(i, g)| {
                g.inputs()
                    .iter()
                    .all(|nid| nid.index() < i && lv.levels()[nid.index()] < lv.levels()[i])
            })
        });
        let n = netlist.num_nets();
        // Packed-key capacity: waves count same-instant commit epochs and
        // are bounded by the toggle count, times by the total delay mass
        // (a commit time never exceeds the sum of all cell delays).
        assert!(
            n < (1usize << WAVE_BITS),
            "netlist {} has {n} nets; the levelized engine packs event keys for < 2^{WAVE_BITS}",
            netlist.name()
        );
        let delay_mass: u64 = delays.delays().iter().map(|&d| d as u64).sum();
        assert!(
            delay_mass < (1 << (63 - WAVE_BITS)),
            "delay annotation for {} carries {delay_mass} ps total, too large for packed keys",
            netlist.name()
        );
        let mut output_slot = vec![0u32; n];
        for (k, &net) in netlist.outputs().iter().enumerate() {
            output_slot[net.index()] = k as u32 + 1;
        }
        let cells = netlist
            .gates()
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let mut ins = [0u32; GateKind::MAX_ARITY];
                for (k, nid) in g.inputs().iter().enumerate() {
                    ins[k] = nid.index() as u32;
                }
                let tt = g.kind().truth_table();
                let arity = g.kind().arity();
                let mut con = [0u16; 1 << GateKind::MAX_ARITY];
                for (m, w) in con.iter_mut().enumerate().take(1 << arity) {
                    let m = m as u16;
                    for idx in 0..(1u16 << arity) {
                        let base = idx & !m;
                        let constant = (0..(1u16 << arity))
                            .all(|x| (tt >> (base | (x & m))) & 1 == (tt >> base) & 1);
                        *w |= (constant as u16) << idx;
                    }
                }
                PackedCell {
                    ins,
                    delay: (delays.delay_ps(i) as u64) << WAVE_BITS,
                    tt,
                    con,
                    arity: arity as u8,
                }
            })
            .collect();
        LevelizedSimulator {
            netlist,
            cells,
            output_slot,
            inputs: netlist.inputs().iter().map(|nid| nid.index() as u32).collect(),
            outputs: netlist.outputs().iter().map(|nid| nid.index() as u32).collect(),
            settled,
            words: vec![0; n],
            start: vec![0; n],
            arena: Vec::new(),
            arena_len: 0,
            ev_sl: vec![0; n << 6],
            ev_word: vec![0; n],
            out_toggles: Vec::new(),
            replay_evals: 0,
        }
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Applies the vector stream cycle by cycle (64 cycles per bit-sliced
    /// block) and returns one [`CycleResult`] per vector, bit-identical to
    /// stepping the event-driven engine over the same stream.
    ///
    /// # Panics
    ///
    /// Panics if any vector's width differs from the number of primary
    /// inputs.
    pub fn run(&mut self, vectors: &[Vec<bool>]) -> Vec<CycleResult> {
        let mut results = Vec::with_capacity(vectors.len());
        for chunk in vectors.chunks(64) {
            self.run_block(chunk, &mut results);
        }
        results
    }

    /// Simulates one block of up to 64 vectors.
    fn run_block(&mut self, chunk: &[Vec<bool>], results: &mut Vec<CycleResult>) {
        let len = chunk.len();
        debug_assert!((1..=64).contains(&len));
        for vector in chunk {
            assert_eq!(vector.len(), self.inputs.len(), "input vector width mismatch");
        }

        // Pass 1: bit-sliced value propagation. Bit j of `words[n]` is the
        // settled value of net n after vector j.
        for (p, &net) in self.inputs.iter().enumerate() {
            let mut w = 0u64;
            for (j, vector) in chunk.iter().enumerate() {
                w |= (vector[p] as u64) << j;
            }
            self.words[net as usize] = w;
        }
        let mut word_evals = 0u64;
        for (i, gate) in self.netlist.gates().iter().enumerate() {
            use GateKind::*;
            let kind = gate.kind();
            if kind == Input {
                continue;
            }
            let mut pw = [0u64; GateKind::MAX_ARITY];
            for (k, nid) in gate.inputs().iter().enumerate() {
                pw[k] = self.words[nid.index()];
            }
            self.words[i] = match kind {
                Input => unreachable!("inputs are skipped above"),
                Const0 => 0,
                Const1 => !0,
                Buf => pw[0],
                Not => !pw[0],
                And2 => pw[0] & pw[1],
                Or2 => pw[0] | pw[1],
                Nand2 => !(pw[0] & pw[1]),
                Nor2 => !(pw[0] | pw[1]),
                Xor2 => pw[0] ^ pw[1],
                Xnor2 => !(pw[0] ^ pw[1]),
                Mux2 => (pw[2] & pw[1]) | (!pw[2] & pw[0]),
                Maj3 => (pw[0] & pw[1]) | (pw[0] & pw[2]) | (pw[1] & pw[2]),
                Xor3 => pw[0] ^ pw[1] ^ pw[2],
                And4 => pw[0] & pw[1] & pw[2] & pw[3],
                Or4 => pw[0] | pw[1] | pw[2] | pw[3],
            };
            word_evals += 1;
        }
        // Start values: each cycle begins at the previous cycle's settled
        // state; bit 0 carries the previous block's settled value in.
        for n in 0..self.words.len() {
            self.start[n] = (self.words[n] << 1) | (self.settled[n] as u64);
        }

        // Pass 2: gate-major arrival-time recovery over the active cone.
        // Seed primary inputs first: one toggle at t = 0, wave 1, in every
        // cycle whose start and settled values differ. Bits past the block
        // tail are masked off here so downstream activity masks never
        // carry phantom cycles.
        let len_mask = if len == 64 { !0u64 } else { (1u64 << len) - 1 };
        // Slot 0 permanently holds SENTINEL: quiet merge lanes park on it,
        // and every toggle list ends with its own SENTINEL terminator, so
        // lane refills in the replay are single unconditional loads.
        if self.arena.is_empty() {
            self.arena.push(SENTINEL);
        } else {
            self.arena[0] = SENTINEL;
        }
        self.arena_len = 1;
        for ii in 0..self.inputs.len() {
            let n = self.inputs[ii] as usize;
            let mut tw = (self.start[n] ^ self.words[n]) & len_mask;
            self.ev_word[n] = tw;
            while tw != 0 {
                let j = tw.trailing_zeros() as usize;
                tw &= tw - 1;
                let off = self.arena_len;
                self.ev_sl[n << 6 | j] = (off as u64) << 32 | 1;
                if self.arena.len() < off + 2 {
                    self.arena.resize(off + 2, 0);
                }
                self.arena[off] = 1; // packed (t = 0, wave = 1)
                self.arena[off + 1] = SENTINEL;
                self.arena_len = off + 2;
            }
        }

        // Topological gate-major scan, monomorphized by arity: every
        // fan-in's block of toggle lists is final (lower net index) before
        // a gate is replayed, and a gate whose fan-ins are all quiet for
        // the whole block costs one OR and one store. Arity-0 cells
        // (primary inputs, constants) are skipped outright: inputs were
        // seeded above and constants keep the all-zero mask they were
        // constructed with.
        for g in 0..self.cells.len() {
            match self.cells[g].arity {
                0 => {}
                1 => self.replay_gate_block::<1>(g),
                2 => self.replay_gate_block::<2>(g),
                3 => self.replay_gate_block::<3>(g),
                _ => self.replay_gate_block::<4>(g),
            }
        }

        // Collect per-cycle output toggles. The event engine emits toggles
        // in heap order — time, then net, then commit wave. Per-net
        // entries are appended in wave order, so a stable sort on the
        // packed (time, net) key reproduces the order exactly.
        let num_outputs = self.outputs.len();
        let mut total_toggles = 0u64;
        for j in 0..len as u32 {
            self.out_toggles.clear();
            let initial_outputs: Vec<bool> =
                self.outputs.iter().map(|&n| (self.start[n as usize] >> j) & 1 == 1).collect();
            for (k, &net) in self.outputs.iter().enumerate() {
                let n = net as usize;
                // An output net listed under several slots toggles only
                // its last slot, matching the event engine's slot map.
                if self.output_slot[n] != k as u32 + 1 {
                    continue;
                }
                if (self.ev_word[n] >> j) & 1 == 0 {
                    continue;
                }
                let sl = self.ev_sl[n << 6 | j as usize];
                let off = (sl >> 32) as usize;
                let end = off + (sl & u32::MAX as u64) as usize;
                for &key in &self.arena[off..end] {
                    self.out_toggles.push((key >> WAVE_BITS << WAVE_BITS | n as u64, k as u32));
                }
            }
            self.out_toggles.sort_by_key(|&(key, _)| key);
            let mut dynamic_delay = 0u64;
            let toggles: Vec<(u64, u32)> = self
                .out_toggles
                .iter()
                .map(|&(key, slot)| {
                    let t = key >> WAVE_BITS;
                    dynamic_delay = dynamic_delay.max(t);
                    (t, slot)
                })
                .collect();
            let cycle = CycleResult::new(initial_outputs, toggles, dynamic_delay, num_outputs);
            tevot_obs::metrics::SIM_CYCLE_DELAY_PS.record(cycle.dynamic_delay_ps());
            tevot_obs::metrics::SIM_TOGGLES_PER_CYCLE.record(cycle.toggles().len() as u64);
            total_toggles += cycle.toggles().len() as u64;
            results.push(cycle);
        }

        for n in 0..self.words.len() {
            self.settled[n] = (self.words[n] >> (len - 1)) & 1 == 1;
        }

        // One batched registry update per block (the event engine updates
        // per cycle; the levelized engine's unit of work is the block).
        tevot_obs::instant!("sim.block");
        tevot_obs::metrics::SIM_CYCLES.add(len as u64);
        tevot_obs::metrics::SIM_OUTPUT_TOGGLES.add(total_toggles);
        tevot_obs::metrics::SIM_LEV_BLOCKS.incr();
        tevot_obs::metrics::SIM_LEV_WORD_EVALS.add(word_evals);
        tevot_obs::metrics::SIM_LEV_REPLAY_EVALS.add(self.replay_evals);
        self.replay_evals = 0;
    }

    /// Replays one gate's inertial-delay response to its fan-in toggles
    /// for every active cycle of the current block, appending its own
    /// toggles to the arena.
    ///
    /// Monomorphized on the gate's arity `A` so the merge is exactly as
    /// wide as the cell: the fan-in start and activity words are hoisted
    /// into registers once per gate, the active cycles iterate as set bits
    /// of one `u64`, and each cycle's replay merges the fan-in toggle
    /// lists (each already key-sorted) through one lane per input —
    /// `keys[i]` holds lane `i`'s next packed event key (or [`SENTINEL`]
    /// when exhausted), so picking the next epoch is an `A`-wide
    /// unconditional min and membership is a plain equality per lane.
    /// Consecutive cycles are independent chains, which lets the CPU
    /// overlap their merge latencies.
    fn replay_gate_block<const A: usize>(&mut self, g: usize) {
        let cell = self.cells[g];
        let mut ew = [0u64; A];
        let mut sw = [0u64; A];
        let mut base = [0usize; A];
        let mut act = 0u64;
        for i in 0..A {
            let n = cell.ins[i] as usize;
            ew[i] = self.ev_word[n];
            sw[i] = self.start[n];
            base[i] = n << 6;
            act |= ew[i];
        }
        if act == 0 {
            self.ev_word[g] = 0;
            return;
        }
        let sg = self.start[g];
        let tt = cell.tt;
        let gbase = g << 6;
        // A zero-delay cell commits in the next same-time wave (key + 1);
        // otherwise the delay advances the time field and the wave
        // restarts at 1. Both are `(key & dmask) + dadd` with per-gate
        // constants, so the schedule needs no branch in the epoch loop.
        let dmask = if cell.delay == 0 { !0u64 } else { !((1u64 << WAVE_BITS) - 1) };
        let dadd = cell.delay + 1;

        let mut out_word = 0u64;
        let mut consumed = 0u64;
        let mut bits = act;
        while bits != 0 {
            let j = bits.trailing_zeros();
            bits &= bits - 1;

            // Lane setup reads each active lane's packed slice entry
            // anyway, so the cycle's exact arena need (one slot per
            // consumed toggle, plus trailing pending and terminator)
            // falls out for free — no separate sizing pre-pass. A quiet
            // lane's table entry is stale garbage; its cursor parks on
            // arena slot 0, the permanent SENTINEL.
            let mut off = [0usize; A];
            let mut idx = 0u32;
            let mut am = 0usize;
            let mut cap = 2usize;
            for i in 0..A {
                idx |= (((sw[i] >> j) & 1) as u32) << i;
                let sl = self.ev_sl[base[i] | j as usize];
                let active = (ew[i] >> j) & 1 == 1;
                am |= (active as usize) << i;
                off[i] = if active { (sl >> 32) as usize } else { 0 };
                cap += if active { (sl & u32::MAX as u64) as usize } else { 0 };
            }
            // Non-sensitized cycle: the truth table cannot leave its
            // start value while only these lanes toggle, whatever the
            // interleaving — no commits, no waves, nothing to replay.
            // This is where most of a deep circuit's activity dies (an
            // AND with a quiet 0 input, a mux selecting the quiet leg),
            // so the skip pays for the whole table.
            if (cell.con[am] >> idx) & 1 == 1 {
                continue;
            }
            consumed += (cap - 2) as u64;

            // The growth branch is almost never taken once the arena
            // reaches its high-water mark.
            let r = self.arena_len;
            let need = r + cap;
            if self.arena.len() < need {
                self.arena.resize(need.next_power_of_two(), 0);
            }
            let ap = self.arena.as_mut_ptr();
            let mut pp = [ap as *const u64; A];
            for i in 0..A {
                // SAFETY: offsets point at lists (or slot 0) strictly
                // below `arena_len <= arena.len()`.
                pp[i] = unsafe { ap.add(off[i]) };
            }
            // SAFETY: the region [r, r + cap) was just sized above.
            let mut wp = unsafe { ap.add(r) };

            // The inertial state machine, kept branch-free: `cur` is the
            // committed value, `pv` the last evaluation, `pk` the pending
            // commit's key (SENTINEL when nothing is in flight). All are
            // 0/1 words (or a key) updated with compare-and-mask
            // arithmetic, because the commit/supersede decisions are
            // data-dependent and unpredictable — a mask update costs a
            // couple of ALU ops, a mispredicted branch ~15 cycles.
            let mut cur = (sg >> j) & 1;
            let mut pv = cur;
            let mut pk = SENTINEL;
            loop {
                let mut ks = [0u64; A];
                for i in 0..A {
                    // SAFETY: cursors point at slot 0, into a toggle
                    // list, or at its terminator — all initialized arena
                    // slots.
                    ks[i] = unsafe { *pp[i] };
                }
                let mut k = ks[0];
                for &key in ks.iter().skip(1) {
                    k = k.min(key);
                }
                if k == SENTINEL {
                    break;
                }
                // Maturity first: a pending commit at or before this
                // epoch lands now. A commit back to the current value is
                // a filtered pulse — consumed, but no toggle (push masked
                // off). The store is unconditional; only the cursor bump
                // is conditional.
                let mature = 0u64.wrapping_sub((pk <= k) as u64);
                let push = mature & 0u64.wrapping_sub(pv ^ cur);
                // SAFETY: at most one commit per consumed toggle plus the
                // tail; the region was sized for all of them.
                unsafe { *wp = pk };
                wp = unsafe { wp.add((push & 1) as usize) };
                cur ^= (pv ^ cur) & push;
                pk |= mature;
                // Coalesce every fan-in toggle of this epoch into one
                // index-bit flip, then evaluate once — equivalent to the
                // event engine's one re-evaluation per commit epoch. An
                // advancing cursor never passes its SENTINEL terminator,
                // because SENTINEL never equals a real epoch key.
                for i in 0..A {
                    let adv = ks[i] == k;
                    idx ^= (adv as u32) << i;
                    // SAFETY: an advanced cursor lands at most on its
                    // list's terminator.
                    pp[i] = unsafe { pp[i].add(adv as usize) };
                }
                let out = ((tt >> idx) & 1) as u64;
                // An output change (re-)schedules a commit, superseding
                // any still-pending one — the event engine's lazy
                // cancellation of its single in-flight event per net.
                let change = 0u64.wrapping_sub(out ^ pv);
                pk = (pk & !change) | (((k & dmask) + dadd) & change);
                pv = out;
            }
            // The last pending commit matures after every input toggle.
            let tail = 0u64.wrapping_sub((pk != SENTINEL) as u64 & (pv ^ cur));
            unsafe { *wp = pk };
            wp = unsafe { wp.add((tail & 1) as usize) };
            cur ^= (pv ^ cur) & tail;

            // Record the slice and terminator. A zero-length slice's
            // entry is never read (its activity bit stays clear).
            // SAFETY: both pointers derive from `ap` within the sized
            // region.
            let len = unsafe { wp.offset_from(ap.add(r)) } as usize;
            unsafe { *wp = SENTINEL };
            self.ev_sl[gbase | j as usize] = (r as u64) << 32 | len as u64;
            out_word |= ((len != 0) as u64) << j;
            debug_assert_eq!(
                cur,
                (self.words[g] >> j) & 1,
                "replayed value of net {g} disagrees with the bit-parallel pass"
            );
            self.arena_len = r + len + 1;
        }
        self.ev_word[g] = out_word;
        self.replay_evals += consumed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimingSimulator;
    use tevot_netlist::fu::FunctionalUnit;
    use tevot_netlist::NetlistBuilder;
    use tevot_timing::{DelayAnnotation, DelayModel, OperatingCondition};

    fn event_cycles(
        nl: &Netlist,
        ann: &DelayAnnotation,
        vectors: &[Vec<bool>],
    ) -> Vec<CycleResult> {
        let mut sim = TimingSimulator::new(nl, ann);
        vectors.iter().map(|v| sim.step(v)).collect()
    }

    #[test]
    fn engine_names_round_trip() {
        for e in Engine::ALL {
            assert_eq!(Engine::from_name(e.name()), Some(e));
        }
        assert_eq!(Engine::from_name("warp"), None);
        assert_eq!(Engine::default(), Engine::Levelized);
        assert_eq!(Engine::Levelized.to_string(), "levelized");
    }

    #[test]
    fn matches_event_engine_on_int_add() {
        let fu = FunctionalUnit::IntAdd;
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::new(0.85, 50.0));
        // 130 vectors: spans three bit-sliced blocks including a short tail.
        let vectors: Vec<Vec<bool>> = (0..130u32)
            .map(|i| {
                let a = i.wrapping_mul(0x9E37_79B9);
                let b = i.wrapping_mul(0x85EB_CA6B) ^ 0xDEAD_BEEF;
                fu.encode_operands(a, b)
            })
            .collect();
        let expect = event_cycles(&nl, &ann, &vectors);
        let got = LevelizedSimulator::new(&nl, &ann).run(&vectors);
        assert_eq!(got, expect);
    }

    #[test]
    fn identical_vectors_produce_no_toggles() {
        let fu = FunctionalUnit::IntAdd;
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::nominal());
        let v = fu.encode_operands(42, 43);
        let cycles = LevelizedSimulator::new(&nl, &ann).run(&[v.clone(), v]);
        assert_eq!(cycles[1].dynamic_delay_ps(), 0);
        assert!(cycles[1].toggles().is_empty());
        assert_eq!(fu.decode_output(cycles[1].settled_outputs()), 85);
    }

    #[test]
    fn zero_delay_cells_replay_exactly() {
        // A zero-delay inverter between two unit-delay gates provokes the
        // event engine's same-timestep wave cascade; the (time, wave) keys
        // must reproduce it, including any double toggle at one instant.
        let mut b = NetlistBuilder::new("zd");
        let x = b.input("x");
        let y = b.input("y");
        let n1 = b.xor(x, y);
        let n2 = b.not(n1); // zero delay
        let n3 = b.and(n2, x);
        let n4 = b.or(n3, n1);
        b.output("o", n4);
        b.output("p", n2);
        let nl = b.finish();
        let mut delays = vec![0u32; nl.num_nets()];
        delays[n1.index()] = 3;
        delays[n2.index()] = 0;
        delays[n3.index()] = 0;
        delays[n4.index()] = 2;
        let ann = DelayAnnotation::new("zd", OperatingCondition::nominal(), delays);
        let vectors: Vec<Vec<bool>> = (0..16u32).map(|i| vec![i & 1 != 0, i & 2 != 0]).collect();
        let expect = event_cycles(&nl, &ann, &vectors);
        let got = LevelizedSimulator::new(&nl, &ann).run(&vectors);
        assert_eq!(got, expect);
    }

    #[test]
    fn wide_gates_replay_like_the_event_engine() {
        let mut b = NetlistBuilder::new("wide");
        let ins: Vec<_> = (0..4).map(|i| b.input(format!("i{i}"))).collect();
        let all = b.and4(ins[0], ins[1], ins[2], ins[3]);
        let any = b.or4(ins[0], ins[1], ins[2], ins[3]);
        let both = b.xor(all, any);
        b.output("all", all);
        b.output("b", both);
        let nl = b.finish();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::nominal());
        let vectors: Vec<Vec<bool>> =
            (0..32u32).map(|i| (0..4).map(|k| (i * 7 + 3) >> k & 1 == 1).collect()).collect();
        let expect = event_cycles(&nl, &ann, &vectors);
        let got = LevelizedSimulator::new(&nl, &ann).run(&vectors);
        assert_eq!(got, expect);
    }

    #[test]
    fn with_initial_inputs_matches_event_engine() {
        let fu = FunctionalUnit::FpAdd;
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::new(0.9, 75.0));
        let init = fu.encode_operands(0x3F80_0000, 0x4000_0000);
        let vectors: Vec<Vec<bool>> = (0..10u32)
            .map(|i| fu.encode_operands(0x3F80_0000 + i * 977, 0x4100_0000 - i * 31))
            .collect();
        let mut ev = TimingSimulator::with_initial_inputs(&nl, &ann, &init);
        let expect: Vec<CycleResult> = vectors.iter().map(|v| ev.step(v)).collect();
        let got = LevelizedSimulator::with_initial_inputs(&nl, &ann, &init).run(&vectors);
        assert_eq!(got, expect);
    }
}
