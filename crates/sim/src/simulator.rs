//! The event-driven gate-level timing simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tevot_netlist::{FanoutCsr, GateKind, Netlist};
use tevot_timing::DelayAnnotation;

use crate::cycle::CycleResult;

/// One scheduled value change: net `net` takes value `value` at `time`
/// (picoseconds from the current clock edge). `seq` implements lazy
/// cancellation: only the event whose sequence number matches the gate's
/// current one is still live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    net: u32,
    seq: u32,
    value: bool,
}

/// Event-driven timing simulation of one combinational functional unit.
///
/// The simulator plays the role of the paper's back-annotated ModelSim run:
/// at each clock edge a new input vector is applied, events propagate
/// through the delay-annotated netlist, and the cycle's [`CycleResult`]
/// records every output toggle. From that one record the caller can read
/// the cycle's dynamic delay *and* the value an output register would
/// capture at any clock period — which is how a single slow-clock
/// characterization run yields timing-error ground truth for all three
/// speedups at once.
///
/// Gates use **inertial delay** semantics, like commercial gate-level
/// simulators: when a gate's inputs change again before a previously
/// scheduled output change has matured, the stale event is cancelled and
/// replaced, so pulses shorter than a gate's propagation delay are
/// filtered. This keeps the event count proportional to real transitions —
/// a transport-delay array multiplier would otherwise generate hundreds of
/// glitch events per gate per cycle that physical gates (low-pass filters
/// by nature) never emit.
///
/// # Examples
///
/// ```
/// use tevot_netlist::fu::FunctionalUnit;
/// use tevot_timing::{DelayModel, OperatingCondition};
/// use tevot_sim::TimingSimulator;
///
/// let fu = FunctionalUnit::IntAdd;
/// let nl = fu.build();
/// let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::nominal());
/// let mut sim = TimingSimulator::new(&nl, &ann);
/// let cycle = sim.step(&fu.encode_operands(123, 456));
/// assert_eq!(fu.decode_output(cycle.settled_outputs()), 579);
/// assert!(cycle.dynamic_delay_ps() > 0);
/// ```
#[derive(Debug)]
pub struct TimingSimulator<'a> {
    netlist: &'a Netlist,
    delays: &'a DelayAnnotation,
    fanout: FanoutCsr,
    values: Vec<bool>,
    heap: BinaryHeap<Reverse<Event>>,
    /// Scratch: gates touched at the current timestep (deduplicated).
    touched: Vec<u32>,
    touch_stamp: Vec<u32>,
    epoch: u32,
    /// Per-gate live sequence number for lazy event cancellation.
    seq: Vec<u32>,
    /// Whether a live event is pending for the gate, and its target value.
    pending: Vec<bool>,
    pending_value: Vec<bool>,
    /// Output-net positions: `output_slot[net] == k+1` if net is output k.
    output_slot: Vec<u32>,
    /// Pin-value scratch, sized from the netlist's max fan-in once at
    /// construction so cells wider than the historical 3-pin library
    /// (e.g. `and4`/`or4`) cannot index out of bounds in the hot loop.
    pins: Vec<bool>,
    events_processed: u64,
}

impl<'a> TimingSimulator<'a> {
    /// Creates a simulator with all primary inputs initially zero and the
    /// circuit fully settled.
    ///
    /// # Panics
    ///
    /// Panics if the annotation was computed for a different netlist size.
    pub fn new(netlist: &'a Netlist, delays: &'a DelayAnnotation) -> Self {
        Self::with_initial_inputs(netlist, delays, &vec![false; netlist.inputs().len()])
    }

    /// Creates a simulator with the circuit settled on `inputs`.
    ///
    /// # Panics
    ///
    /// Panics on netlist/annotation mismatch or wrong input count.
    pub fn with_initial_inputs(
        netlist: &'a Netlist,
        delays: &'a DelayAnnotation,
        inputs: &[bool],
    ) -> Self {
        assert_eq!(
            delays.delays().len(),
            netlist.num_nets(),
            "delay annotation does not match netlist {}",
            netlist.name()
        );
        let values = netlist.evaluate_nets(inputs);
        let mut output_slot = vec![0u32; netlist.num_nets()];
        for (k, &net) in netlist.outputs().iter().enumerate() {
            output_slot[net.index()] = k as u32 + 1;
        }
        let n = netlist.num_nets();
        TimingSimulator {
            netlist,
            delays,
            fanout: netlist.fanout_csr(),
            values,
            heap: BinaryHeap::new(),
            touched: Vec::new(),
            touch_stamp: vec![0; n],
            epoch: 0,
            seq: vec![0; n],
            pending: vec![false; n],
            pending_value: vec![false; n],
            output_slot,
            pins: vec![false; netlist.max_fan_in()],
            events_processed: 0,
        }
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Currently settled value of every net.
    pub fn net_values(&self) -> &[bool] {
        &self.values
    }

    /// Total number of events processed since construction (a throughput
    /// metric for the speedup experiments).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Applies a new input vector at a clock edge and propagates until the
    /// circuit settles, returning the cycle's timing record.
    ///
    /// Times inside the returned [`CycleResult`] are relative to the edge.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn step(&mut self, inputs: &[bool]) -> CycleResult {
        let num_outputs = self.netlist.outputs().len();
        assert_eq!(inputs.len(), self.netlist.inputs().len(), "input vector width mismatch");
        let initial_outputs: Vec<bool> =
            self.netlist.outputs().iter().map(|n| self.values[n.index()]).collect();

        debug_assert!(self.heap.is_empty());
        for (&net, &v) in self.netlist.inputs().iter().zip(inputs) {
            let idx = net.index();
            if self.values[idx] != v {
                self.seq[idx] += 1;
                self.heap.push(Reverse(Event {
                    time: 0,
                    net: idx as u32,
                    seq: self.seq[idx],
                    value: v,
                }));
            }
        }

        let mut toggles: Vec<(u64, u32)> = Vec::new(); // (time, output slot)
        let mut dynamic_delay = 0u64;
        let mut pins = std::mem::take(&mut self.pins);
        let events_before = self.events_processed;
        let mut gate_evals = 0u64;

        while let Some(&Reverse(head)) = self.heap.peek() {
            let now = head.time;
            self.epoch += 1;
            self.touched.clear();
            // Phase 1: commit all live changes scheduled for `now`.
            while let Some(&Reverse(ev)) = self.heap.peek() {
                if ev.time != now {
                    break;
                }
                self.heap.pop();
                self.events_processed += 1;
                let idx = ev.net as usize;
                if ev.seq != self.seq[idx] {
                    continue; // cancelled by a later re-evaluation
                }
                self.pending[idx] = false;
                if self.values[idx] == ev.value {
                    continue; // pulse filtered back to the current value
                }
                self.values[idx] = ev.value;
                let slot = self.output_slot[idx];
                if slot != 0 {
                    toggles.push((now, slot - 1));
                    if now > dynamic_delay {
                        dynamic_delay = now;
                    }
                }
                for &sink in self.fanout.sinks(tevot_netlist::NetId::from_index(idx)) {
                    if self.touch_stamp[sink as usize] != self.epoch {
                        self.touch_stamp[sink as usize] = self.epoch;
                        self.touched.push(sink);
                    }
                }
            }
            // Phase 2: re-evaluate touched gates and (re)schedule their
            // output changes after each gate's propagation delay. Inertial
            // semantics: a fresh evaluation supersedes a pending one.
            gate_evals += self.touched.len() as u64;
            for ti in 0..self.touched.len() {
                let gi = self.touched[ti] as usize;
                let gate = &self.netlist.gates()[gi];
                debug_assert!(gate.kind().is_cell());
                debug_assert_ne!(gate.kind(), GateKind::Input);
                let ins = gate.inputs();
                for (p, n) in ins.iter().enumerate() {
                    pins[p] = self.values[n.index()];
                }
                let out = gate.eval(&pins[..ins.len()]);
                let target =
                    if self.pending[gi] { self.pending_value[gi] } else { self.values[gi] };
                if out == target {
                    continue; // already at, or already heading to, this value
                }
                self.seq[gi] += 1;
                self.pending[gi] = true;
                self.pending_value[gi] = out;
                let d = self.delays.delay_ps(gi) as u64;
                self.heap.push(Reverse(Event {
                    time: now + d,
                    net: gi as u32,
                    seq: self.seq[gi],
                    value: out,
                }));
            }
        }

        self.pins = pins;

        // One batched registry update per cycle keeps the hot loop free of
        // shared-cacheline traffic. The instant marks each cycle on the
        // `--trace` timeline; disabled it is a single branch.
        tevot_obs::instant!("sim.cycle");
        tevot_obs::metrics::SIM_CYCLES.incr();
        tevot_obs::metrics::SIM_EVENTS.add(self.events_processed - events_before);
        tevot_obs::metrics::SIM_GATE_EVALS.add(gate_evals);
        tevot_obs::metrics::SIM_OUTPUT_TOGGLES.add(toggles.len() as u64);
        tevot_obs::metrics::SIM_CYCLE_DELAY_PS.record(dynamic_delay);
        tevot_obs::metrics::SIM_TOGGLES_PER_CYCLE.record(toggles.len() as u64);

        CycleResult::new(initial_outputs, toggles, dynamic_delay, num_outputs)
    }
}

/// Replays the single transition `previous -> current` and returns the
/// current cycle's dynamic delay in picoseconds — the oracle the serve
/// stack's shadow sampler uses to score live predictions without running
/// a full characterization (settling on `previous` first reproduces the
/// input-history dependence the paper's Fig. 1 motivates).
pub fn replay_transition(
    netlist: &Netlist,
    delays: &DelayAnnotation,
    previous: &[bool],
    current: &[bool],
) -> u64 {
    let mut sim = TimingSimulator::with_initial_inputs(netlist, delays, previous);
    sim.step(current).dynamic_delay_ps()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tevot_netlist::fu::FunctionalUnit;
    use tevot_netlist::NetlistBuilder;
    use tevot_timing::{DelayAnnotation, DelayModel, OperatingCondition};

    /// Builds the paper's Fig. 1 example: two gates in series where the
    /// sensitized path depends on which input toggles.
    ///
    ///   x --(1ns)--> inv --+--(1ns)--> and --> out
    ///   y ----------(0.5ns buffer)----^
    ///
    /// (Gate functions adapted to our library; delays in ps.)
    fn fig1_circuit() -> (tevot_netlist::Netlist, DelayAnnotation) {
        let mut b = NetlistBuilder::new("fig1");
        let x = b.input("x");
        let y = b.input("y");
        let inv = b.not(x); // 1000 ps
        let byp = b.buf(y); // 500 ps
        let out = b.and(inv, byp); // 1000 ps
        b.output("o", out);
        let nl = b.finish();
        let mut delays = vec![0u32; nl.num_nets()];
        delays[inv.index()] = 1000;
        delays[byp.index()] = 500;
        delays[out.index()] = 1000;
        let ann = DelayAnnotation::new("fig1", OperatingCondition::nominal(), delays);
        (nl, ann)
    }

    #[test]
    fn fig1_different_inputs_different_delays() {
        let (nl, ann) = fig1_circuit();
        let mut sim = TimingSimulator::new(&nl, &ann);
        // First input change: x stays 0 (inv=1), y rises -> path through
        // buffer + AND = 1.5ns.
        let c1 = sim.step(&[false, true]);
        assert_eq!(c1.settled_outputs(), &[true]);
        assert_eq!(c1.dynamic_delay_ps(), 1500);
        // Second change: x rises -> inv falls after 1ns, AND falls at 2ns.
        let c2 = sim.step(&[true, true]);
        assert_eq!(c2.settled_outputs(), &[false]);
        assert_eq!(c2.dynamic_delay_ps(), 2000);
    }

    #[test]
    fn settled_outputs_match_functional_evaluation() {
        let fu = FunctionalUnit::IntAdd;
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::new(0.85, 50.0));
        let mut sim = TimingSimulator::new(&nl, &ann);
        for (a, b) in [(1u32, 1u32), (u32::MAX, 1), (0xAAAA_AAAA, 0x5555_5555), (7, 9)] {
            let cycle = sim.step(&fu.encode_operands(a, b));
            assert_eq!(fu.decode_output(cycle.settled_outputs()), fu.golden(a, b));
            // And the simulator's internal state agrees with functional eval.
            let expect = nl.evaluate(&fu.encode_operands(a, b));
            let got: Vec<bool> = nl.outputs().iter().map(|n| sim.net_values()[n.index()]).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn dynamic_delay_never_exceeds_static_delay() {
        use tevot_timing::sta;
        let fu = FunctionalUnit::IntAdd;
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::new(0.81, 0.0));
        let crit = sta::run(&nl, &ann).critical_delay_ps();
        let mut sim = TimingSimulator::new(&nl, &ann);
        let mut max_seen = 0;
        for i in 0..200u32 {
            let a = i.wrapping_mul(0x9E37_79B9);
            let b = i.wrapping_mul(0x85EB_CA6B) ^ 0xDEAD_BEEF;
            let cycle = sim.step(&fu.encode_operands(a, b));
            assert!(
                cycle.dynamic_delay_ps() <= crit,
                "dynamic {} > static {crit}",
                cycle.dynamic_delay_ps()
            );
            max_seen = max_seen.max(cycle.dynamic_delay_ps());
        }
        assert!(max_seen > crit / 2, "random vectors should sensitize long paths");
    }

    #[test]
    fn identical_vector_produces_no_toggles() {
        let fu = FunctionalUnit::IntAdd;
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::nominal());
        let mut sim = TimingSimulator::new(&nl, &ann);
        let v = fu.encode_operands(42, 43);
        let _ = sim.step(&v);
        let cycle = sim.step(&v);
        assert_eq!(cycle.dynamic_delay_ps(), 0);
        assert!(cycle.toggles().is_empty());
        assert_eq!(fu.decode_output(cycle.settled_outputs()), 85);
    }

    #[test]
    fn replay_transition_matches_a_sequential_run() {
        let fu = FunctionalUnit::IntAdd;
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::new(0.85, 50.0));
        let mut sim = TimingSimulator::new(&nl, &ann);
        let mut prev = fu.encode_operands(0, 0);
        for (a, b) in [(1u32, 1u32), (u32::MAX, 1), (0xAAAA_AAAA, 0x5555_5555), (7, 9)] {
            let cur = fu.encode_operands(a, b);
            let sequential = sim.step(&cur).dynamic_delay_ps();
            assert_eq!(replay_transition(&nl, &ann, &prev, &cur), sequential);
            prev = cur;
        }
    }

    #[test]
    fn wide_gates_simulate_without_out_of_bounds() {
        // Regression: the pin scratch buffer used to be a fixed `[bool; 3]`,
        // so any cell with fan-in 4 (the MAC FU building blocks) indexed
        // out of bounds. Size it from the netlist instead.
        let mut b = NetlistBuilder::new("wide");
        let ins: Vec<_> = (0..4).map(|i| b.input(format!("i{i}"))).collect();
        let all = b.and4(ins[0], ins[1], ins[2], ins[3]);
        let any = b.or4(ins[0], ins[1], ins[2], ins[3]);
        b.output("all", all);
        b.output("any", any);
        let nl = b.finish();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::nominal());
        let mut sim = TimingSimulator::new(&nl, &ann);
        for bits in [0b1111u16, 0b0001, 0b0000, 0b1110, 0b1111] {
            let pins: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let cycle = sim.step(&pins);
            assert_eq!(cycle.settled_outputs(), &[bits == 15, bits != 0], "bits {bits:04b}");
        }
    }

    #[test]
    fn dynamic_delay_depends_on_workload() {
        // Carry chain: 0xFFFF.. + 1 ripples through all 32 bits; 1 + 1
        // touches only the bottom. Start both from the same settled state.
        let fu = FunctionalUnit::IntAdd;
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::nominal());

        let mut sim = TimingSimulator::new(&nl, &ann);
        let long = sim.step(&fu.encode_operands(u32::MAX, 1)).dynamic_delay_ps();

        let mut sim = TimingSimulator::new(&nl, &ann);
        let short = sim.step(&fu.encode_operands(1, 1)).dynamic_delay_ps();

        assert!(
            long > 2 * short,
            "full carry ripple ({long} ps) should dwarf a short one ({short} ps)"
        );
    }
}
