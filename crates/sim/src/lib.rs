//! Event-driven gate-level timing simulation for the TEVoT (DAC 2020)
//! reproduction.
//!
//! This crate replaces the paper's back-annotated ModelSim runs. Given a
//! netlist from [`tevot_netlist`] and a per-condition
//! [`DelayAnnotation`](tevot_timing::DelayAnnotation) from [`tevot_timing`],
//! the [`TimingSimulator`] propagates each input vector with
//! transport-delay semantics and records, per cycle:
//!
//! * the **dynamic delay** — the arrival time of the last output toggle,
//!   the quantity TEVoT learns to predict;
//! * every output toggle, so the word captured at *any* clock period (and
//!   hence the timing-error ground truth for every clock speedup) can be
//!   reconstructed from one slow-clock characterization run;
//! * the settled (functionally correct) output word.
//!
//! [`trace`] adds multi-cycle workload runs and VCD dumping; the companion
//! [`tevot_vcd`] crate recomputes dynamic delays from those dumps, closing
//! the same loop the paper's Python DTA script closes over ModelSim VCDs.
//!
//! # Examples
//!
//! ```
//! use tevot_netlist::fu::FunctionalUnit;
//! use tevot_timing::{DelayModel, OperatingCondition};
//! use tevot_sim::TimingSimulator;
//!
//! let fu = FunctionalUnit::IntAdd;
//! let nl = fu.build();
//! let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::new(0.81, 0.0));
//! let mut sim = TimingSimulator::new(&nl, &ann);
//! let cycle = sim.step(&fu.encode_operands(u32::MAX, 1));
//! // A full carry ripple: the dynamic delay is large, and clocking faster
//! // than it produces a timing error.
//! assert!(cycle.is_erroneous_at(cycle.dynamic_delay_ps() / 2));
//! assert!(!cycle.is_erroneous_at(cycle.dynamic_delay_ps()));
//! ```

#![warn(missing_docs)]

mod cycle;
mod levelized;
mod simulator;
pub mod trace;

pub use cycle::CycleResult;
pub use levelized::{Engine, LevelizedSimulator};
pub use simulator::{replay_transition, TimingSimulator};
