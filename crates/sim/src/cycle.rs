//! Per-cycle timing records.

/// The timing record of one simulated cycle.
///
/// Holds the output values at the start of the cycle, every output toggle
/// `(time, output_index)` in time order, and the cycle's dynamic delay.
/// From this one record the outputs latched at *any* clock period can be
/// reconstructed — the key to evaluating several clock speedups from a
/// single characterization run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleResult {
    initial_outputs: Vec<bool>,
    toggles: Vec<(u64, u32)>,
    dynamic_delay: u64,
    settled: Vec<bool>,
}

impl CycleResult {
    pub(crate) fn new(
        initial_outputs: Vec<bool>,
        toggles: Vec<(u64, u32)>,
        dynamic_delay: u64,
        num_outputs: usize,
    ) -> Self {
        debug_assert_eq!(initial_outputs.len(), num_outputs);
        debug_assert!(toggles.windows(2).all(|w| w[0].0 <= w[1].0), "toggles out of order");
        let mut settled = initial_outputs.clone();
        for &(_, slot) in &toggles {
            settled[slot as usize] = !settled[slot as usize];
        }
        CycleResult { initial_outputs, toggles, dynamic_delay, settled }
    }

    /// The cycle's dynamic delay in picoseconds: the time of the last
    /// output toggle, or 0 if no output toggled.
    pub fn dynamic_delay_ps(&self) -> u64 {
        self.dynamic_delay
    }

    /// Output values at the start of the cycle (the previous cycle's
    /// settled values).
    pub fn initial_outputs(&self) -> &[bool] {
        &self.initial_outputs
    }

    /// Output values once the circuit has fully settled — the functionally
    /// correct result of this cycle.
    pub fn settled_outputs(&self) -> &[bool] {
        &self.settled
    }

    /// All output toggles as `(time_ps, output_index)`, in time order.
    pub fn toggles(&self) -> &[(u64, u32)] {
        &self.toggles
    }

    /// The output word a register clocked with period `clock_ps` would
    /// capture: every toggle with `time <= clock_ps` has landed, later ones
    /// are missed.
    pub fn sample_at(&self, clock_ps: u64) -> Vec<bool> {
        let mut out = self.initial_outputs.clone();
        for &(t, slot) in &self.toggles {
            if t > clock_ps {
                break;
            }
            out[slot as usize] = !out[slot as usize];
        }
        out
    }

    /// Whether clocking this cycle with period `clock_ps` produces a timing
    /// error, i.e. the captured word differs from the settled word.
    ///
    /// Note that this is the *observed* ground truth, which can differ from
    /// the delay comparison `dynamic_delay > clock_ps` in the rare case
    /// where a late glitch happens to restore the correct value.
    pub fn is_erroneous_at(&self, clock_ps: u64) -> bool {
        // Fast path: if the last toggle landed in time, all did.
        if self.dynamic_delay <= clock_ps {
            return false;
        }
        self.sample_at(clock_ps) != self.settled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cycle() -> CycleResult {
        // Outputs start at [0, 1]; bit 0 toggles at 100 and 300, bit 1 at
        // 250. Settled = [0, 0].
        CycleResult::new(vec![false, true], vec![(100, 0), (250, 1), (300, 0)], 300, 2)
    }

    #[test]
    fn settled_applies_all_toggles() {
        let c = sample_cycle();
        assert_eq!(c.settled_outputs(), &[false, false]);
        assert_eq!(c.dynamic_delay_ps(), 300);
    }

    #[test]
    fn sampling_cuts_off_late_toggles() {
        let c = sample_cycle();
        assert_eq!(c.sample_at(0), &[false, true]);
        assert_eq!(c.sample_at(99), &[false, true]);
        assert_eq!(c.sample_at(100), &[true, true], "toggle at the edge is captured");
        assert_eq!(c.sample_at(260), &[true, false]);
        assert_eq!(c.sample_at(300), &[false, false]);
    }

    #[test]
    fn error_classification() {
        let c = sample_cycle();
        assert!(c.is_erroneous_at(120));
        assert!(c.is_erroneous_at(299));
        assert!(!c.is_erroneous_at(300));
        assert!(!c.is_erroneous_at(10_000));
        // Sampling before any toggle: initial != settled -> erroneous.
        assert!(c.is_erroneous_at(0));
    }

    #[test]
    fn clock_edge_boundary_pins_error_iff_delay_exceeds_period() {
        // Paper semantics: a cycle errs iff its dynamic delay *exceeds*
        // the clock period. The boundary period == delay captures the
        // final toggle, so sample_at and is_erroneous_at must both treat
        // it as clean — and SimTrace::characterization (crate `tevot`)
        // derives its flags from is_erroneous_at, keeping all consumers
        // on the same convention.
        let c = sample_cycle();
        let d = c.dynamic_delay_ps();
        assert!(c.is_erroneous_at(d - 1));
        assert!(!c.is_erroneous_at(d));
        assert_eq!(c.sample_at(d), c.settled_outputs());
        assert_ne!(c.sample_at(d - 1), c.settled_outputs());
        // A quiet cycle (no toggles, delay 0) is clean even at period 0.
        let quiet = CycleResult::new(vec![true], vec![], 0, 1);
        assert!(!quiet.is_erroneous_at(0));
        assert_eq!(quiet.sample_at(0), quiet.settled_outputs());
    }

    #[test]
    fn glitch_that_restores_value_is_not_an_error() {
        // Bit 0 pulses high at 100 and back low at 200: settled == initial.
        let c = CycleResult::new(vec![false], vec![(100, 0), (200, 0)], 200, 1);
        assert!(!c.is_erroneous_at(250));
        // Sampling inside the pulse *is* an error.
        assert!(c.is_erroneous_at(150));
        // Sampling before the pulse captures the (correct) initial value.
        assert!(!c.is_erroneous_at(50));
    }
}
