//! Multi-cycle workload runs and VCD dumping.

use tevot_netlist::Netlist;
use tevot_timing::DelayAnnotation;
use tevot_vcd::VcdWriter;

use crate::cycle::CycleResult;
use crate::simulator::TimingSimulator;

/// Simulates a stream of input vectors from a freshly initialized
/// simulator, returning one [`CycleResult`] per vector.
///
/// The first vector settles from the all-zero state; as in the paper's
/// flow, callers who want statistics unaffected by the cold start can skip
/// the first cycle.
///
/// # Panics
///
/// Panics if any vector's width differs from the netlist's input count.
pub fn run_vectors(
    netlist: &Netlist,
    delays: &DelayAnnotation,
    vectors: &[Vec<bool>],
) -> Vec<CycleResult> {
    let mut sim = TimingSimulator::new(netlist, delays);
    vectors.iter().map(|v| sim.step(v)).collect()
}

/// Simulates a workload and dumps the switching activity of the primary
/// outputs (plus the primary inputs, for context) as a VCD document —
/// the exact artifact the paper's ModelSim stage hands to its DTA script.
///
/// Cycle `k`'s input vector is applied at time `k * clock_period_ps`.
/// Output signals are named `<port>_<bit>`, input signals likewise, so a
/// DTA pass can select them by prefix.
///
/// # Panics
///
/// Panics if `clock_period_ps` is smaller than some cycle's dynamic delay
/// (the dump would be unreadable: toggles from one cycle would bleed into
/// the next). Use a characterization period from
/// [`tevot_timing::sta::StaReport::characterization_period_ps`].
pub fn dump_vcd(
    netlist: &Netlist,
    delays: &DelayAnnotation,
    vectors: &[Vec<bool>],
    clock_period_ps: u64,
) -> String {
    let mut writer = VcdWriter::new(netlist.name());
    let mut input_ids = Vec::with_capacity(netlist.inputs().len());
    for port in netlist.input_ports() {
        for bit in 0..port.width() {
            input_ids.push(writer.declare_wire(format!("{}_{bit}", port.name())));
        }
    }
    let mut output_ids = Vec::with_capacity(netlist.outputs().len());
    for port in netlist.output_ports() {
        for bit in 0..port.width() {
            output_ids.push(writer.declare_wire(format!("{}_{bit}", port.name())));
        }
    }

    let mut sim = TimingSimulator::new(netlist, delays);
    let mut initial = vec![false; netlist.inputs().len()];
    let settled: Vec<bool> =
        netlist.outputs().iter().map(|n| sim.net_values()[n.index()]).collect();
    initial.extend(settled);
    writer.begin_dump(&initial);

    let mut cur_inputs = vec![false; netlist.inputs().len()];
    for (k, vector) in vectors.iter().enumerate() {
        let edge = k as u64 * clock_period_ps;
        for (i, (&new, cur)) in vector.iter().zip(cur_inputs.iter_mut()).enumerate() {
            if new != *cur {
                writer.change(edge, input_ids[i], new);
                *cur = new;
            }
        }
        let cycle = sim.step(vector);
        assert!(
            cycle.dynamic_delay_ps() <= clock_period_ps,
            "characterization clock ({clock_period_ps} ps) violated by cycle {k} \
             (dynamic delay {} ps)",
            cycle.dynamic_delay_ps()
        );
        let mut word = cycle.initial_outputs().to_vec();
        for &(t, slot) in cycle.toggles() {
            let slot = slot as usize;
            word[slot] = !word[slot];
            writer.change(edge + t, output_ids[slot], word[slot]);
        }
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tevot_netlist::fu::FunctionalUnit;
    use tevot_timing::{sta, DelayModel, OperatingCondition};
    use tevot_vcd::{dta, parse_vcd};

    #[test]
    fn vcd_dta_matches_simulator_delays() {
        let fu = FunctionalUnit::IntAdd;
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::new(0.9, 25.0));
        let period = sta::run(&nl, &ann).characterization_period_ps();

        let vectors: Vec<Vec<bool>> = (0..20u32)
            .map(|i| fu.encode_operands(i.wrapping_mul(0x9E37_79B9), i.wrapping_mul(0x85EB_CA6B)))
            .collect();

        let cycles = run_vectors(&nl, &ann, &vectors);
        let text = dump_vcd(&nl, &ann, &vectors, period);
        let vcd = parse_vcd(&text).unwrap();
        let extracted = dta::dynamic_delays(&vcd, period, vectors.len(), |s| s.starts_with("sum_"));

        let direct: Vec<u64> = cycles.iter().map(|c| c.dynamic_delay_ps()).collect();
        assert_eq!(
            extracted.delays_ps(),
            direct.as_slice(),
            "VCD-extracted dynamic delays must equal the simulator's"
        );
        assert!(direct.iter().any(|&d| d > 0));
    }

    #[test]
    fn run_vectors_yields_one_cycle_per_vector() {
        let fu = FunctionalUnit::FpMul;
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::nominal());
        let vectors =
            vec![fu.encode_f32(1.5, 2.0), fu.encode_f32(-3.25, 0.5), fu.encode_f32(100.0, 0.001)];
        let cycles = run_vectors(&nl, &ann, &vectors);
        assert_eq!(cycles.len(), 3);
        assert_eq!(fu.decode_output(cycles[0].settled_outputs()) as u32, 3.0f32.to_bits());
        assert_eq!(fu.decode_output(cycles[1].settled_outputs()) as u32, (-1.625f32).to_bits());
    }
}
