//! Differential fuzzing of the levelized engine against the event-driven
//! oracle.
//!
//! The levelized engine's contract is **bit identity**, not statistical
//! agreement: for any netlist, delay annotation (including zero-delay
//! cells), initial state, and vector stream, both engines must produce the
//! same [`CycleResult`]s — same dynamic delays, same output-toggle lists
//! in the same order, same settled words, and hence the same error class
//! at every clock period. These tests pin that contract on random
//! netlists and on all four functional units across the paper's (V, T)
//! grid, at one and at four `tevot-par` workers.

use proptest::prelude::*;
use tevot_netlist::fu::FunctionalUnit;
use tevot_netlist::{Netlist, NetlistBuilder};
use tevot_sim::{CycleResult, LevelizedSimulator, TimingSimulator};
use tevot_timing::{ConditionGrid, DelayAnnotation, DelayModel, OperatingCondition};

fn event_cycles(nl: &Netlist, ann: &DelayAnnotation, vectors: &[Vec<bool>]) -> Vec<CycleResult> {
    let mut sim = TimingSimulator::new(nl, ann);
    vectors.iter().map(|v| sim.step(v)).collect()
}

/// One randomly chosen gate: a kind selector plus raw input picks that are
/// reduced modulo the number of nets existing when the gate is placed, so
/// every generated netlist is automatically topologically valid.
type GateSpec = (u8, (u16, u16, u16, u16));

fn build_random_netlist(num_inputs: usize, gates: &[GateSpec], out_picks: &[u16]) -> Netlist {
    let mut b = NetlistBuilder::new("fuzz");
    let mut nets: Vec<tevot_netlist::NetId> =
        (0..num_inputs).map(|i| b.input(format!("i{i}"))).collect();
    for &(kind, picks) in gates {
        let p = |raw: u16| nets[raw as usize % nets.len()];
        let (a, c, d, e) = (p(picks.0), p(picks.1), p(picks.2), p(picks.3));
        let net = match kind % 13 {
            0 => b.buf(a),
            1 => b.not(a),
            2 => b.and(a, c),
            3 => b.or(a, c),
            4 => b.nand(a, c),
            5 => b.nor(a, c),
            6 => b.xor(a, c),
            7 => b.xnor(a, c),
            8 => b.mux(a, c, d),
            9 => b.maj(a, c, d),
            10 => b.xor3(a, c, d),
            11 => b.and4(a, c, d, e),
            _ => b.or4(a, c, d, e),
        };
        nets.push(net);
    }
    // Outputs may tap any net, primary inputs included — but each net at
    // most once: the simulators map a toggling net to a single output
    // slot, so two slots sharing one net would shadow each other.
    let mut taken = Vec::new();
    for &pick in out_picks {
        let net = nets[pick as usize % nets.len()];
        if !taken.contains(&net) {
            taken.push(net);
        }
    }
    for (k, &net) in taken.iter().enumerate() {
        b.output(format!("o{k}"), net);
    }
    b.finish()
}

/// Per-net delays cycled from a small pool that deliberately includes 0:
/// zero-delay cells make the event engine cascade several commit waves
/// within one timestep, the hardest case for exact replay.
fn annotate(nl: &Netlist, pool: &[u32]) -> DelayAnnotation {
    let delays = (0..nl.num_nets()).map(|i| pool[i % pool.len()]).collect();
    DelayAnnotation::new(nl.name(), OperatingCondition::nominal(), delays)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random netlists x random delay pools (with zeros) x random vector
    /// streams: the two engines agree cycle for cycle, bit for bit.
    #[test]
    fn random_netlists_agree_bit_for_bit(
        num_inputs in 2usize..=6,
        gates in prop::collection::vec(
            (any::<u8>(), (any::<u16>(), any::<u16>(), any::<u16>(), any::<u16>())),
            5..50,
        ),
        out_picks in prop::collection::vec(any::<u16>(), 1..5),
        delay_pool in prop::collection::vec(0u32..=40, 1..8),
        stream in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let nl = build_random_netlist(num_inputs, &gates, &out_picks);
        let ann = annotate(&nl, &delay_pool);
        let vectors: Vec<Vec<bool>> = stream
            .iter()
            .map(|&bits| (0..num_inputs).map(|p| bits >> p & 1 == 1).collect())
            .collect();
        let expect = event_cycles(&nl, &ann, &vectors);
        let got = LevelizedSimulator::new(&nl, &ann).run(&vectors);
        prop_assert_eq!(&got, &expect);
        // Settled outputs also equal the zero-delay functional evaluation.
        let functional = nl.evaluate(&vectors[vectors.len() - 1]);
        prop_assert_eq!(got.last().unwrap().settled_outputs(), &functional[..]);
    }

    /// Functional units under realistic annotations: random operand
    /// transitions at a random (V, T) point.
    #[test]
    fn fu_transitions_agree(
        fu in prop_oneof![
            Just(FunctionalUnit::IntAdd),
            Just(FunctionalUnit::IntMul),
            Just(FunctionalUnit::FpAdd),
            Just(FunctionalUnit::FpMul),
        ],
        pairs in prop::collection::vec((any::<u32>(), any::<u32>()), 1..5),
        v in 0.81f64..=1.0,
        t in 0.0f64..=100.0,
    ) {
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::new(v, t));
        let vectors: Vec<Vec<bool>> =
            pairs.iter().map(|&(a, b)| fu.encode_operands(a, b)).collect();
        let expect = event_cycles(&nl, &ann, &vectors);
        let got = LevelizedSimulator::new(&nl, &ann).run(&vectors);
        prop_assert_eq!(got, expect);
    }
}

/// All four functional units across the full Fig. 3 (V, T) grid, swept in
/// parallel at one and at four workers: the levelized engine matches the
/// event-driven oracle on every condition, and the parallel fan-out does
/// not perturb the per-condition results.
#[test]
fn all_fus_full_grid_oracle_at_one_and_four_workers() {
    let conditions: Vec<OperatingCondition> = ConditionGrid::fig3().iter().collect();
    for fu in [
        FunctionalUnit::IntAdd,
        FunctionalUnit::IntMul,
        FunctionalUnit::FpAdd,
        FunctionalUnit::FpMul,
    ] {
        let nl = fu.build();
        let vectors: Vec<Vec<bool>> = (0..20u32)
            .map(|i| {
                let a = i.wrapping_mul(0x9E37_79B9) ^ 0x0F0F_1234;
                let b = i.wrapping_mul(0x85EB_CA6B).rotate_left(7);
                fu.encode_operands(a, b)
            })
            .collect();
        let sweep = |jobs: usize| {
            tevot_par::with_jobs(jobs, || {
                tevot_par::map(&conditions, |&cond| {
                    let ann = DelayModel::tsmc45_like().annotate(&nl, cond);
                    let expect = event_cycles(&nl, &ann, &vectors);
                    let got = LevelizedSimulator::new(&nl, &ann).run(&vectors);
                    assert_eq!(got, expect, "{fu} at {cond}: engines disagree");
                    got
                })
            })
        };
        assert_eq!(sweep(1), sweep(4), "{fu}: sweep results depend on the worker count");
    }
}
