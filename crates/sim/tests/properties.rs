//! Property tests for the timing simulator: agreement with functional
//! evaluation, STA bounding, and sampling semantics on arbitrary operand
//! transitions.

use proptest::prelude::*;
use tevot_netlist::fu::FunctionalUnit;
use tevot_sim::TimingSimulator;
use tevot_timing::{sta, DelayModel, OperatingCondition};

fn fu_strategy() -> impl Strategy<Value = FunctionalUnit> {
    prop_oneof![
        Just(FunctionalUnit::IntAdd),
        Just(FunctionalUnit::FpAdd),
        Just(FunctionalUnit::FpMul),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any sequence of input vectors, the settled outputs equal the
    /// zero-delay functional evaluation of the last vector, and every
    /// dynamic delay is bounded by the STA critical path.
    #[test]
    fn settled_equals_functional_and_sta_bounds(
        fu in fu_strategy(),
        pairs in prop::collection::vec((any::<u32>(), any::<u32>()), 1..6),
        v in 0.81f64..=1.0,
        t in 0.0f64..=100.0,
    ) {
        let nl = fu.build();
        let cond = OperatingCondition::new(v, t);
        let ann = DelayModel::tsmc45_like().annotate(&nl, cond);
        let crit = sta::run(&nl, &ann).critical_delay_ps();
        let mut sim = TimingSimulator::new(&nl, &ann);
        for &(a, b) in &pairs {
            let cycle = sim.step(&fu.encode_operands(a, b));
            prop_assert!(cycle.dynamic_delay_ps() <= crit);
            prop_assert_eq!(
                fu.decode_output(cycle.settled_outputs()),
                fu.golden(a, b),
                "{}({:#x}, {:#x})", fu, a, b
            );
            // Sampling at (or past) the critical path always captures the
            // correct word.
            prop_assert!(!cycle.is_erroneous_at(crit));
            prop_assert_eq!(cycle.sample_at(crit), cycle.settled_outputs());
        }
    }

    /// Sampling is monotone in a weak sense: at time >= dynamic delay the
    /// word is correct; strictly before the *first* toggle it equals the
    /// previous word.
    #[test]
    fn sampling_semantics(a in any::<u32>(), b in any::<u32>(), c in any::<u32>(), d in any::<u32>()) {
        let fu = FunctionalUnit::IntAdd;
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::nominal());
        let mut sim = TimingSimulator::new(&nl, &ann);
        let first = sim.step(&fu.encode_operands(a, b));
        let second = sim.step(&fu.encode_operands(c, d));
        prop_assert_eq!(second.initial_outputs(), first.settled_outputs());
        if let Some(&(t0, _)) = second.toggles().first() {
            prop_assert_eq!(second.sample_at(t0 - 1), second.initial_outputs());
        }
        prop_assert_eq!(
            second.sample_at(second.dynamic_delay_ps()),
            second.settled_outputs()
        );
    }

    /// Replaying the same transition from the same state gives an
    /// identical cycle record (simulation is deterministic).
    #[test]
    fn simulation_is_deterministic(a in any::<u32>(), b in any::<u32>()) {
        let fu = FunctionalUnit::FpAdd;
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::new(0.85, 50.0));
        let run = || {
            let mut sim = TimingSimulator::new(&nl, &ann);
            sim.step(&fu.encode_operands(a, b))
        };
        prop_assert_eq!(run(), run());
    }
}
