//! Cooperative cancellation: a shared token polled by long-running
//! stages, plus a wall-clock watchdog.
//!
//! Cancellation is *cooperative*: nothing is killed. Workers check
//! [`CancelToken::is_cancelled`] between tasks and stop claiming new
//! work; the sweep flushes whatever checkpoint shards completed and
//! returns [`ErrorKind::Cancelled`](crate::ErrorKind::Cancelled), so a
//! later `--resume` picks up exactly where the abort landed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::error::TevotError;

/// A cheap, cloneable cancellation flag shared between a controller
/// (watchdog, signal handler, test) and the workers it may stop.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// A cancellation point: fails fast when the token is cancelled.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Cancelled`](crate::ErrorKind::Cancelled) after
    /// [`cancel`](Self::cancel) was called.
    pub fn check(&self, what: &str) -> Result<(), TevotError> {
        if self.is_cancelled() {
            Err(TevotError::cancelled(format!("{what}: cancelled")))
        } else {
            Ok(())
        }
    }
}

/// A wall-clock watchdog that cancels a token after a deadline. The
/// polling thread exits as soon as the watchdog is dropped, the
/// deadline fires, or the token is cancelled by someone else.
#[derive(Debug)]
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns a watchdog that cancels `token` once `deadline` elapses.
    /// Polls at ~1 ms granularity, so sub-millisecond deadlines are
    /// effectively immediate.
    pub fn deadline(token: &CancelToken, deadline: Duration) -> Watchdog {
        let token = token.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_in_thread = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("tevot-watchdog".into())
            .spawn(move || {
                let start = std::time::Instant::now();
                while !stop_in_thread.load(Ordering::Acquire) && !token.is_cancelled() {
                    if start.elapsed() >= deadline {
                        tevot_obs::warn!("watchdog: deadline {deadline:?} elapsed, cancelling");
                        token.cancel();
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
            .expect("spawn watchdog thread");
        Watchdog { stop, handle: Some(handle) }
    }

    /// Disarms the watchdog without waiting for the deadline.
    pub fn disarm(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ErrorKind;

    #[test]
    fn token_starts_clear_and_propagates_to_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        t.check("stage").unwrap();
        clone.cancel();
        assert!(t.is_cancelled());
        let e = t.check("stage").unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Cancelled);
        assert_eq!(e.exit_code(), 6);
    }

    #[test]
    fn watchdog_fires_after_deadline() {
        let t = CancelToken::new();
        let _w = Watchdog::deadline(&t, Duration::from_millis(5));
        let start = std::time::Instant::now();
        while !t.is_cancelled() {
            assert!(start.elapsed() < Duration::from_secs(5), "watchdog never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn disarmed_watchdog_never_fires() {
        let t = CancelToken::new();
        let w = Watchdog::deadline(&t, Duration::from_millis(20));
        w.disarm();
        std::thread::sleep(Duration::from_millis(40));
        assert!(!t.is_cancelled());
    }

    #[test]
    fn dropping_the_watchdog_stops_its_thread() {
        let t = CancelToken::new();
        drop(Watchdog::deadline(&t, Duration::from_secs(3600)));
        assert!(!t.is_cancelled());
    }
}
