//! Crash-safe checkpoint shards: atomic writes, verified reads.
//!
//! A checkpoint directory holds one *shard* file per completed unit of
//! work (one sweep condition, one study cell). Shards are written
//! atomically — payload goes to a `.tmp` file, is `fsync`ed, then
//! renamed into place — so a process killed at any instant leaves only
//! complete shards or ignorable temporaries, never a torn file.
//!
//! # Shard format
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "TVCKPT1\0"
//! 8       4     format version (little-endian u32, currently 1)
//! 12      8     payload length in bytes (little-endian u64)
//! 20      8     FNV-1a 64 checksum of the payload (little-endian u64)
//! 28      n     payload
//! ```
//!
//! Reads verify all four header fields plus the checksum;
//! [`CheckpointDir::read_valid`] treats any mismatch as "not
//! checkpointed" (warn and recompute), because a corrupt shard must
//! never be worth more than the few seconds it takes to redo one
//! condition.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::codec::fnv1a64;
use crate::error::{ResultExt, TevotError};
use crate::fail_point;
use crate::retry::Retry;

const MAGIC: &[u8; 8] = b"TVCKPT1\0";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 28;

/// A directory of atomic checkpoint shards.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    dir: PathBuf,
    retry: Retry,
}

impl CheckpointDir {
    /// Opens (creating if necessary) the checkpoint directory `dir`.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Io`](crate::ErrorKind::Io) when the directory cannot
    /// be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CheckpointDir, TevotError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .ctx(|| format!("create checkpoint directory {}", dir.display()))?;
        Ok(CheckpointDir { dir, retry: Retry::default() })
    }

    /// Replaces the retry policy used for shard I/O.
    pub fn with_retry(mut self, retry: Retry) -> Self {
        self.retry = retry;
        self
    }

    /// The directory shards live in.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of shard `name`.
    pub fn shard_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.ckpt"))
    }

    /// Atomically commits `payload` as shard `name`: header + payload to
    /// a temporary file, `fsync`, rename into place. Transient I/O
    /// failures (including injected ones) are retried with backoff.
    ///
    /// Failpoint: `ckpt.write`.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Io`](crate::ErrorKind::Io) once the retry budget is
    /// exhausted.
    pub fn write(&self, name: &str, payload: &[u8]) -> Result<(), TevotError> {
        let final_path = self.shard_path(name);
        let tmp_path = self.dir.join(format!("{name}.ckpt.tmp.{}", std::process::id()));
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        header.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        self.retry
            .run("write checkpoint shard", || {
                fail_point!("ckpt.write");
                let mut f = fs::File::create(&tmp_path)?;
                f.write_all(&header)?;
                f.write_all(payload)?;
                f.sync_all()?;
                drop(f);
                fs::rename(&tmp_path, &final_path)
            })
            .ctx(|| format!("write checkpoint shard {}", final_path.display()))?;
        tevot_obs::metrics::RESIL_CKPT_SHARDS_WRITTEN.incr();
        tevot_obs::debug!("checkpoint: committed shard {}", final_path.display());
        Ok(())
    }

    /// Loads shard `name` if it exists and verifies: returns the payload
    /// on success, `None` when the shard is absent, truncated, or fails
    /// any header or checksum check (a warning is logged — the caller
    /// recomputes). Transient read failures are retried.
    ///
    /// Failpoint: `ckpt.read`.
    pub fn read_valid(&self, name: &str) -> Option<Vec<u8>> {
        let path = self.shard_path(name);
        let bytes = self
            .retry
            .run("read checkpoint shard", || {
                fail_point!("ckpt.read");
                match fs::read(&path) {
                    Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
                    other => other.map(Some),
                }
            })
            .unwrap_or_else(|e| {
                tevot_obs::warn!("checkpoint: cannot read {}: {e}; recomputing", path.display());
                None
            })?;
        match Self::verify(&bytes) {
            Ok(payload) => Some(payload.to_vec()),
            Err(reason) => {
                tevot_obs::warn!(
                    "checkpoint: invalid shard {}: {reason}; recomputing",
                    path.display()
                );
                None
            }
        }
    }

    /// Whether a structurally valid shard `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.read_valid(name).is_some()
    }

    fn verify(bytes: &[u8]) -> Result<&[u8], String> {
        if bytes.len() < HEADER_LEN {
            return Err(format!("file is {} bytes, header needs {HEADER_LEN}", bytes.len()));
        }
        if &bytes[..8] != MAGIC {
            return Err("bad magic".into());
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(format!("unsupported shard version {version}"));
        }
        let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let payload = &bytes[HEADER_LEN..];
        if payload.len() as u64 != len {
            return Err(format!(
                "payload is {} bytes, header declares {len} (truncated write?)",
                payload.len()
            ));
        }
        let declared = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
        let actual = fnv1a64(payload);
        if declared != actual {
            return Err(format!(
                "checksum mismatch: header {declared:#018x}, payload {actual:#018x}"
            ));
        }
        Ok(payload)
    }

    /// Writes the `manifest` shard that fingerprints the run
    /// configuration. When a manifest shard already exists it must carry
    /// the same fingerprint — resuming into a directory checkpointed
    /// under a different configuration would silently mix incompatible
    /// results.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Corrupt`](crate::ErrorKind::Corrupt) on fingerprint
    /// mismatch; [`ErrorKind::Io`](crate::ErrorKind::Io) when the shard
    /// cannot be written.
    pub fn bind_manifest(&self, fingerprint: u64) -> Result<(), TevotError> {
        if let Some(existing) = self.read_valid("manifest") {
            let mut r = crate::codec::ByteReader::new(&existing);
            let found = r.u64().context_manifest(self)?;
            r.finish().context_manifest(self)?;
            if found != fingerprint {
                return Err(TevotError::corrupt(format!(
                    "checkpoint directory {} was written by a different run configuration \
                     (manifest fingerprint {found:#018x}, this run {fingerprint:#018x}); \
                     use a fresh --resume directory",
                    self.dir.display()
                )));
            }
            return Ok(());
        }
        let mut w = crate::codec::ByteWriter::new();
        w.put_u64(fingerprint);
        self.write("manifest", &w.into_bytes())
    }
}

trait ManifestCtx<T> {
    fn context_manifest(self, ckpt: &CheckpointDir) -> Result<T, TevotError>;
}

impl<T> ManifestCtx<T> for Result<T, TevotError> {
    fn context_manifest(self, ckpt: &CheckpointDir) -> Result<T, TevotError> {
        self.ctx(|| format!("read manifest shard in {}", ckpt.dir.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tevot_ckpt_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_then_read_round_trips() {
        let dir = scratch("roundtrip");
        let ckpt = CheckpointDir::open(&dir).unwrap();
        ckpt.write("cond-0", b"hello shard").unwrap();
        assert_eq!(ckpt.read_valid("cond-0").as_deref(), Some(&b"hello shard"[..]));
        assert!(ckpt.contains("cond-0"));
        assert!(!ckpt.contains("cond-1"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let dir = scratch("corrupt");
        let ckpt = CheckpointDir::open(&dir).unwrap();
        ckpt.write("cond-0", b"pristine payload").unwrap();
        let path = ckpt.shard_path("cond-0");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip a payload bit
        fs::write(&path, &bytes).unwrap();
        assert_eq!(ckpt.read_valid("cond-0"), None, "checksum must catch the flip");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_shard_is_rejected() {
        let dir = scratch("truncated");
        let ckpt = CheckpointDir::open(&dir).unwrap();
        ckpt.write("cond-0", b"will be cut short").unwrap();
        let path = ckpt.shard_path("cond-0");
        let bytes = fs::read(&path).unwrap();
        for cut in [0, 7, HEADER_LEN - 1, HEADER_LEN + 3] {
            fs::write(&path, &bytes[..cut]).unwrap();
            assert_eq!(ckpt.read_valid("cond-0"), None, "cut at {cut}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let dir = scratch("magic");
        let ckpt = CheckpointDir::open(&dir).unwrap();
        ckpt.write("cond-0", b"x").unwrap();
        let path = ckpt.shard_path("cond-0");
        let good = fs::read(&path).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        fs::write(&path, &bad).unwrap();
        assert_eq!(ckpt.read_valid("cond-0"), None);

        let mut bad = good.clone();
        bad[8] = 99; // version
        fs::write(&path, &bad).unwrap();
        assert_eq!(ckpt.read_valid("cond-0"), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_write_faults_are_retried_through() {
        let dir = scratch("retry");
        let _scope = crate::fail::scoped("ckpt.write=io@0.5");
        // A 50% fault rate needs more than the default 5-attempt budget
        // to make 10 consecutive writes reliably (0.5^5 ≈ 3% per write).
        let ckpt = CheckpointDir::open(&dir).unwrap().with_retry(Retry::new(
            20,
            std::time::Duration::from_micros(1),
            std::time::Duration::from_micros(4),
        ));
        for i in 0..10 {
            ckpt.write(&format!("cond-{i}"), format!("payload {i}").as_bytes()).unwrap();
        }
        drop(_scope);
        for i in 0..10 {
            assert_eq!(
                ckpt.read_valid(&format!("cond-{i}")).as_deref(),
                Some(format!("payload {i}").as_bytes())
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hard_write_fault_surfaces_as_io_error() {
        let dir = scratch("hardfail");
        let _scope = crate::fail::scoped("ckpt.write=io");
        let ckpt = CheckpointDir::open(&dir).unwrap().with_retry(Retry::new(
            2,
            std::time::Duration::from_micros(1),
            std::time::Duration::from_micros(1),
        ));
        let e = ckpt.write("cond-0", b"doomed").unwrap_err();
        assert_eq!(e.kind(), crate::ErrorKind::Io);
        assert!(e.is_injected());
        drop(_scope);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_binds_and_detects_mismatch() {
        let dir = scratch("manifest");
        let ckpt = CheckpointDir::open(&dir).unwrap();
        ckpt.bind_manifest(0xABCD).unwrap();
        ckpt.bind_manifest(0xABCD).unwrap(); // same fingerprint: fine
        let e = ckpt.bind_manifest(0xEF01).unwrap_err();
        assert_eq!(e.kind(), crate::ErrorKind::Corrupt);
        assert!(e.to_string().contains("different run configuration"), "{e}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_payload_round_trips() {
        let dir = scratch("empty");
        let ckpt = CheckpointDir::open(&dir).unwrap();
        ckpt.write("cond-0", b"").unwrap();
        assert_eq!(ckpt.read_valid("cond-0").as_deref(), Some(&b""[..]));
        fs::remove_dir_all(&dir).unwrap();
    }
}
