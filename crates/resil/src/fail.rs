//! Zero-dependency failpoints: deterministic fault injection for chaos
//! testing.
//!
//! A failpoint *site* is a named hook compiled into fallible code —
//! checkpoint I/O, VCD parsing, model persistence, `tevot-par` workers.
//! With nothing configured, evaluating a site is one relaxed atomic load
//! and a never-taken branch. Configuration comes from the `TEVOT_FAIL`
//! environment variable (parsed once, at the first evaluation) or
//! programmatically from tests via [`scoped`].
//!
//! # Specification grammar
//!
//! ```text
//! TEVOT_FAIL = spec *("," spec)
//! spec       = site "=" action ["@" probability] ["#" skip]
//! action     = "off" | "io" | "panic" | "kill"
//! ```
//!
//! * `io` — the site returns an injected [`std::io::Error`] (wrapping
//!   [`InjectedFailure`], so retries and tests can recognize it).
//! * `panic` — the site panics, simulating a hard mid-operation crash.
//! * `kill` — the site aborts the whole process (`SIGABRT`), simulating
//!   a machine-level death: no unwinding, no destructors, no flushing.
//!   This is how `tevot-fleet` chaos runs kill worker processes
//!   mid-sweep (site `fleet.task`); never use it in in-process tests.
//! * `probability` — chance in `[0, 1]` that an evaluation fires
//!   (default 1). Draws come from a per-site deterministic generator
//!   seeded by `TEVOT_FAIL_SEED` (default 0), so a chaos run is exactly
//!   reproducible.
//! * `skip` — the first `skip` evaluations always pass (default 0);
//!   `ckpt.write=panic#2` crashes on the third checkpoint write.
//!
//! Example: `TEVOT_FAIL=ckpt.write=io@0.3,par.task=panic#5`.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The action a configured site performs when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Never fires (useful to mask an env-configured site in a test).
    Off,
    /// Return an injected I/O error.
    Io,
    /// Panic, simulating a crash at the site.
    Panic,
    /// Abort the whole process, simulating a kill -9 / machine death.
    Kill,
}

#[derive(Debug)]
struct Site {
    action: FailAction,
    probability: f64,
    skip: u64,
    hits: u64,
    rng_state: u64,
}

/// The error payload of injected I/O failures; detectable through
/// [`std::io::Error::get_ref`] so retries and assertions can tell an
/// injected fault from a real one.
#[derive(Debug)]
pub struct InjectedFailure {
    site: String,
}

impl InjectedFailure {
    /// An injected failure attributed to `site`.
    pub fn new(site: impl Into<String>) -> Self {
        InjectedFailure { site: site.into() }
    }

    /// The failpoint site that fired.
    pub fn site(&self) -> &str {
        &self.site
    }
}

impl fmt::Display for InjectedFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected failure at failpoint {:?}", self.site)
    }
}

impl Error for InjectedFailure {}

/// Fast-path state: 0 = env not parsed yet, 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);
const STATE_UNINIT: u8 = 0;
const STATE_DISABLED: u8 = 1;
const STATE_ENABLED: u8 = 2;

static SITES: Mutex<Option<HashMap<String, Site>>> = Mutex::new(None);

/// Serializes tests that reconfigure failpoints; held by [`scoped`].
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn site_seed(site: &str) -> u64 {
    let env_seed =
        std::env::var("TEVOT_FAIL_SEED").ok().and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    env_seed ^ h
}

fn parse_spec(spec: &str) -> Result<HashMap<String, Site>, String> {
    let mut sites = HashMap::new();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (site, rest) =
            part.split_once('=').ok_or_else(|| format!("failpoint spec {part:?}: missing '='"))?;
        let (rest, skip) = match rest.split_once('#') {
            Some((r, s)) => {
                (r, s.parse::<u64>().map_err(|_| format!("{part:?}: bad skip count {s:?}"))?)
            }
            None => (rest, 0),
        };
        let (action, probability) = match rest.split_once('@') {
            Some((a, p)) => {
                let p: f64 = p.parse().map_err(|_| format!("{part:?}: bad probability {p:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("{part:?}: probability {p} outside [0, 1]"));
                }
                (a, p)
            }
            None => (rest, 1.0),
        };
        let action = match action {
            "off" => FailAction::Off,
            "io" => FailAction::Io,
            "panic" => FailAction::Panic,
            "kill" => FailAction::Kill,
            other => return Err(format!("{part:?}: unknown action {other:?}")),
        };
        sites.insert(
            site.to_string(),
            Site { action, probability, skip, hits: 0, rng_state: site_seed(site) },
        );
    }
    Ok(sites)
}

fn install(sites: HashMap<String, Site>) {
    let enabled = sites.values().any(|s| s.action != FailAction::Off);
    *unpoisoned(&SITES) = Some(sites);
    STATE.store(if enabled { STATE_ENABLED } else { STATE_DISABLED }, Ordering::Release);
}

fn init_from_env() {
    // Racing initializers both parse the same env and install equivalent
    // state; the lock serializes the map swap itself.
    let spec = std::env::var("TEVOT_FAIL").unwrap_or_default();
    match parse_spec(&spec) {
        Ok(sites) => {
            if !sites.is_empty() {
                tevot_obs::warn!("fault injection enabled: TEVOT_FAIL={spec}");
            }
            install(sites);
        }
        Err(e) => {
            tevot_obs::error!("ignoring invalid TEVOT_FAIL: {e}");
            install(HashMap::new());
        }
    }
}

/// Replaces the whole failpoint configuration from a spec string (see
/// the module docs for the grammar). An empty spec disables everything.
///
/// # Errors
///
/// Returns a description of the first malformed spec element; the
/// previous configuration stays in place on error.
pub fn configure(spec: &str) -> Result<(), String> {
    parse_spec(spec).map(install)
}

/// Disables all failpoints (including any `TEVOT_FAIL` configuration).
pub fn clear() {
    install(HashMap::new());
}

/// Whether any site is currently armed.
pub fn is_enabled() -> bool {
    STATE.load(Ordering::Relaxed) == STATE_ENABLED
}

/// Evaluates the failpoint `site`.
///
/// With no configuration this is one relaxed atomic load. When the site
/// is armed and fires, an `io` action returns an injected
/// [`io::Error`] (kind [`io::ErrorKind::Other`], payload
/// [`InjectedFailure`]) and a `panic` action panics.
///
/// # Errors
///
/// Returns the injected error for a firing `io` site.
///
/// # Panics
///
/// Panics for a firing `panic` site — deliberately, to simulate a crash.
#[inline]
pub fn eval(site: &str) -> Result<(), io::Error> {
    match STATE.load(Ordering::Relaxed) {
        STATE_DISABLED => Ok(()),
        _ => eval_slow(site),
    }
}

#[cold]
fn eval_slow(site: &str) -> Result<(), io::Error> {
    if STATE.load(Ordering::Acquire) == STATE_UNINIT {
        init_from_env();
    }
    let fired = {
        let mut guard = unpoisoned(&SITES);
        let Some(entry) = guard.as_mut().and_then(|m| m.get_mut(site)) else {
            return Ok(());
        };
        entry.hits += 1;
        if entry.action == FailAction::Off || entry.hits <= entry.skip {
            return Ok(());
        }
        if entry.probability < 1.0 {
            let draw = splitmix64(&mut entry.rng_state) as f64 / u64::MAX as f64;
            if draw >= entry.probability {
                return Ok(());
            }
        }
        entry.action
    };
    tevot_obs::metrics::RESIL_FAULTS_INJECTED.incr();
    match fired {
        FailAction::Off => Ok(()),
        FailAction::Io => {
            tevot_obs::debug!("failpoint {site}: injecting i/o error");
            Err(io::Error::other(InjectedFailure::new(site)))
        }
        FailAction::Panic => {
            tevot_obs::warn!("failpoint {site}: injected panic");
            panic!("failpoint {site}: injected panic");
        }
        FailAction::Kill => {
            // Deliberately no unwinding and no cleanup: the fleet chaos
            // harness wants the worker to vanish exactly as a SIGKILL or
            // power loss would leave it.
            tevot_obs::warn!("failpoint {site}: killing the process");
            std::process::abort();
        }
    }
}

/// A scoped failpoint configuration for tests: takes the global
/// exclusivity lock (serializing every test that injects faults),
/// installs `spec`, and restores the previous configuration on drop.
/// Each scope re-seeds per-site generators, so behavior inside a scope
/// is deterministic regardless of what ran before.
///
/// # Panics
///
/// Panics on a malformed spec — a test bug, not a runtime condition.
pub fn scoped(spec: &str) -> ScopedFail {
    let guard = EXCLUSIVE.lock().unwrap_or_else(PoisonError::into_inner);
    if STATE.load(Ordering::Acquire) == STATE_UNINIT {
        init_from_env();
    }
    let saved = unpoisoned(&SITES).take();
    let saved_state = STATE.load(Ordering::Acquire);
    configure(spec).expect("valid scoped failpoint spec");
    ScopedFail { _guard: guard, saved, saved_state }
}

/// Guard returned by [`scoped`]; restores the previous configuration
/// (and releases the exclusivity lock) when dropped.
pub struct ScopedFail {
    _guard: MutexGuard<'static, ()>,
    saved: Option<HashMap<String, Site>>,
    saved_state: u8,
}

impl Drop for ScopedFail {
    fn drop(&mut self) {
        *unpoisoned(&SITES) = self.saved.take();
        STATE.store(self.saved_state, Ordering::Release);
    }
}

impl fmt::Debug for ScopedFail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScopedFail").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconfigured_site_is_a_no_op() {
        let _scope = scoped("");
        assert!(eval("nowhere").is_ok());
        assert!(!is_enabled());
    }

    #[test]
    fn io_action_returns_injected_error() {
        let _scope = scoped("t.io=io");
        let err = eval("t.io").unwrap_err();
        let injected =
            err.get_ref().and_then(|r| r.downcast_ref::<InjectedFailure>()).expect("injected");
        assert_eq!(injected.site(), "t.io");
        assert!(eval("t.other").is_ok(), "other sites unaffected");
    }

    #[test]
    fn skip_count_passes_first_evaluations() {
        let _scope = scoped("t.skip=io#2");
        assert!(eval("t.skip").is_ok());
        assert!(eval("t.skip").is_ok());
        assert!(eval("t.skip").is_err(), "third evaluation fires");
        assert!(eval("t.skip").is_err());
    }

    #[test]
    fn panic_action_panics() {
        let _scope = scoped("t.panic=panic");
        let caught = std::panic::catch_unwind(|| eval("t.panic"));
        assert!(caught.is_err());
    }

    #[test]
    fn probability_is_deterministic_and_roughly_calibrated() {
        let run = || {
            let _scope = scoped("t.prob=io@0.3");
            (0..1000).map(|_| u32::from(eval("t.prob").is_err())).collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same draw sequence");
        let fired: u32 = a.iter().sum();
        assert!((200..400).contains(&fired), "~30% of 1000, got {fired}");
    }

    #[test]
    fn off_masks_a_site() {
        let _scope = scoped("t.masked=off");
        assert!(eval("t.masked").is_ok());
    }

    #[test]
    fn scoped_restores_previous_configuration() {
        {
            let _outer = scoped("t.outer=io");
            assert!(eval("t.outer").is_err());
        }
        // Outside the scope the site is back to whatever the environment
        // says (no env in tests: disabled), and eval is safe to call.
        let _ = eval("t.outer");
    }

    #[test]
    fn kill_action_parses_but_is_never_evaluated_here() {
        // Evaluating a firing `kill` site aborts the process, so the
        // test only checks the grammar and that skips hold it back.
        let _scope = scoped("t.kill=kill#1000000");
        assert!(is_enabled());
        assert!(eval("t.kill").is_ok(), "still inside the skip budget");
    }

    #[test]
    fn spec_errors_are_descriptive() {
        assert!(parse_spec("noequals").unwrap_err().contains("missing '='"));
        assert!(parse_spec("s=explode").unwrap_err().contains("unknown action"));
        assert!(parse_spec("s=io@1.5").unwrap_err().contains("outside"));
        assert!(parse_spec("s=io@x").unwrap_err().contains("bad probability"));
        assert!(parse_spec("s=io#x").unwrap_err().contains("bad skip"));
        assert!(parse_spec("").unwrap().is_empty());
    }
}
