//! The workspace error taxonomy.
//!
//! Every fallible path of the pipeline funnels into [`TevotError`]: a
//! classified, context-chained error whose [`ErrorKind`] maps to a
//! stable process exit code, so scripts driving the CLI (and the CI
//! chaos job) can distinguish "you typed the flag wrong" from "the
//! checkpoint shard is corrupt" from "the deadline watchdog fired"
//! without parsing stderr.

use std::error::Error;
use std::fmt;
use std::io;

/// The coarse classification of a [`TevotError`], and the source of the
/// stable exit codes documented in DESIGN.md §12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed command-line usage (unknown flag, unparsable value).
    Usage,
    /// An operating-system I/O failure (open, read, write, rename...).
    Io,
    /// Stored data that exists but fails validation: bad magic, short
    /// payload, checksum mismatch, implausible counts.
    Corrupt,
    /// Text that cannot be parsed (VCD dumps, workload traces, reports).
    Parse,
    /// The operation was cancelled cooperatively (watchdog, deadline).
    Cancelled,
    /// Everything else — a bug or an unclassified failure.
    Internal,
}

impl ErrorKind {
    /// The stable process exit code for this kind. `0` is success and
    /// `1` the generic failure, so every specific kind starts at 2.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorKind::Usage => 2,
            ErrorKind::Io => 3,
            ErrorKind::Corrupt => 4,
            ErrorKind::Parse => 5,
            ErrorKind::Cancelled => 6,
            ErrorKind::Internal => 1,
        }
    }

    /// The kind's lowercase label (`usage`, `io`, ...).
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Usage => "usage",
            ErrorKind::Io => "io",
            ErrorKind::Corrupt => "corrupt",
            ErrorKind::Parse => "parse",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::Internal => "internal",
        }
    }
}

/// The workspace error: a kind, a message, and an optional chained
/// source. Context wraps outside-in — `open checkpoint shard
/// /x/cond-3.ckpt: checksum mismatch at byte 28` — while the innermost
/// error's [`ErrorKind`] classification is preserved through every
/// [`TevotError::context`] layer.
#[derive(Debug)]
pub struct TevotError {
    kind: ErrorKind,
    message: String,
    source: Option<Box<dyn Error + Send + Sync + 'static>>,
}

impl TevotError {
    /// An error of the given kind with no source.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        TevotError { kind, message: message.into(), source: None }
    }

    /// A [`ErrorKind::Usage`] error.
    pub fn usage(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Usage, message)
    }

    /// A [`ErrorKind::Corrupt`] error.
    pub fn corrupt(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Corrupt, message)
    }

    /// A [`ErrorKind::Parse`] error.
    pub fn parse(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Parse, message)
    }

    /// The [`ErrorKind::Cancelled`] error produced by cancellation
    /// points.
    pub fn cancelled(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Cancelled, message)
    }

    /// Attaches an arbitrary source error.
    pub fn with_source(mut self, source: impl Error + Send + Sync + 'static) -> Self {
        self.source = Some(Box::new(source));
        self
    }

    /// Wraps this error in an outer context message. The result keeps
    /// this error's kind, so classification survives any number of
    /// context layers.
    pub fn context(self, message: impl Into<String>) -> Self {
        TevotError { kind: self.kind, message: message.into(), source: Some(Box::new(self)) }
    }

    /// The error's classification.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The process exit code for this error.
    pub fn exit_code(&self) -> u8 {
        self.kind.exit_code()
    }

    /// This layer's message, without the source chain.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Whether any error in the chain is an injected failpoint failure
    /// (see [`crate::fail::InjectedFailure`]).
    pub fn is_injected(&self) -> bool {
        let mut cursor: Option<&(dyn Error + 'static)> = Some(self);
        while let Some(e) = cursor {
            if e.is::<crate::fail::InjectedFailure>() {
                return true;
            }
            if let Some(io) = e.downcast_ref::<io::Error>() {
                if io.get_ref().is_some_and(|r| r.is::<crate::fail::InjectedFailure>()) {
                    return true;
                }
            }
            cursor = e.source();
        }
        false
    }
}

impl fmt::Display for TevotError {
    /// Renders the full context chain on one line (`outer: inner:
    /// innermost`), anyhow-style, so `eprintln!("error: {e}")` tells the
    /// whole story. Each layer prints its own message and then delegates
    /// the remainder to its source's `Display` — which renders *its*
    /// chain — so no part of the story appears twice. A layer with an
    /// empty message (the `From` conversions) is pure classification and
    /// contributes nothing textual of its own.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.message.is_empty() {
            write!(f, "{}", self.message)?;
            if self.source.is_some() {
                write!(f, ": ")?;
            }
        }
        if let Some(source) = &self.source {
            write!(f, "{source}")?;
        }
        Ok(())
    }
}

impl Error for TevotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.source.as_deref().map(|s| s as _)
    }
}

impl From<io::Error> for TevotError {
    /// Classifies without adding text: the io error's own `Display`
    /// (which includes any custom payload, e.g. an injected failure)
    /// carries the message.
    fn from(e: io::Error) -> Self {
        TevotError { kind: ErrorKind::Io, message: String::new(), source: Some(Box::new(e)) }
    }
}

/// Extension adding lazy context to any `Result` convertible into a
/// [`TevotError`].
pub trait ResultExt<T> {
    /// Converts the error into a [`TevotError`] and wraps it in the
    /// message produced by `message` (evaluated only on failure).
    fn ctx(self, message: impl FnOnce() -> String) -> Result<T, TevotError>;
}

impl<T, E: Into<TevotError>> ResultExt<T> for Result<T, E> {
    fn ctx(self, message: impl FnOnce() -> String) -> Result<T, TevotError> {
        self.map_err(|e| e.into().context(message()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(ErrorKind::Usage.exit_code(), 2);
        assert_eq!(ErrorKind::Io.exit_code(), 3);
        assert_eq!(ErrorKind::Corrupt.exit_code(), 4);
        assert_eq!(ErrorKind::Parse.exit_code(), 5);
        assert_eq!(ErrorKind::Cancelled.exit_code(), 6);
        assert_eq!(ErrorKind::Internal.exit_code(), 1);
    }

    #[test]
    fn context_preserves_kind_and_chains_display() {
        let inner = TevotError::corrupt("checksum mismatch at byte 28");
        let outer = inner.context("read shard cond-3.ckpt").context("resume sweep");
        assert_eq!(outer.kind(), ErrorKind::Corrupt);
        assert_eq!(outer.exit_code(), 4);
        assert_eq!(
            outer.to_string(),
            "resume sweep: read shard cond-3.ckpt: checksum mismatch at byte 28"
        );
    }

    #[test]
    fn io_errors_classify_as_io() {
        let e: TevotError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert_eq!(e.kind(), ErrorKind::Io);
        let wrapped = Err::<(), _>(io::Error::new(io::ErrorKind::NotFound, "gone"))
            .ctx(|| "open model".into())
            .unwrap_err();
        assert_eq!(wrapped.kind(), ErrorKind::Io);
        assert!(wrapped.to_string().starts_with("open model: "));
    }

    #[test]
    fn source_chain_is_walkable() {
        let e = TevotError::parse("bad token").context("parse workload");
        let src = e.source().expect("has source");
        assert!(src.downcast_ref::<TevotError>().is_some());
    }

    #[test]
    fn injected_detection_walks_the_chain() {
        let injected = crate::fail::InjectedFailure::new("ckpt.write");
        let io_err = io::Error::other(injected);
        let e = TevotError::from(io_err).context("write shard");
        assert!(e.is_injected());
        assert!(!TevotError::corrupt("plain").is_injected());
    }
}
