//! Little-endian byte codec for checkpoint payloads.
//!
//! Checkpoint shards must round-trip **bit-exactly** (the resume chaos
//! test compares resumed and uninterrupted runs byte for byte), so
//! floating-point values travel as raw IEEE-754 bit patterns. The reader
//! returns [`ErrorKind::Corrupt`](crate::ErrorKind::Corrupt) errors that
//! name the offending byte offset, mirroring the `ml/persist.rs`
//! convention.

use crate::error::TevotError;

/// An append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bit pattern (bit-exact).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `u64`-counted list of little-endian `u64`s.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Appends a `u64`-counted raw byte blob (e.g. a nested payload).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64`-counted bit-packed bool vector (LSB-first).
    pub fn put_bools(&mut self, vs: &[bool]) {
        self.put_u64(vs.len() as u64);
        for chunk in vs.chunks(8) {
            let mut byte = 0u8;
            for (i, &b) in chunk.iter().enumerate() {
                byte |= (b as u8) << i;
            }
            self.buf.push(byte);
        }
    }
}

/// A checked little-endian byte reader over a payload slice. Every
/// failure reports the byte offset at which decoding stopped.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// The current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Corrupt-data error at the current offset.
    pub fn corrupt(&self, message: impl std::fmt::Display) -> TevotError {
        TevotError::corrupt(format!("{message} at byte {}", self.pos))
    }

    /// Fails unless every payload byte was consumed.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Corrupt`](crate::ErrorKind::Corrupt) naming the
    /// number of trailing bytes.
    pub fn finish(self) -> Result<(), TevotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(self.corrupt(format!("{} unexpected trailing bytes", self.buf.len() - self.pos)))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TevotError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            self.corrupt(format!(
                "truncated payload: need {n} bytes, {} remain",
                self.buf.len() - self.pos
            ))
        })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Corrupt error at the current offset on truncation.
    pub fn u8(&mut self) -> Result<u8, TevotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Corrupt error at the current offset on truncation.
    pub fn u32(&mut self) -> Result<u32, TevotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Corrupt error at the current offset on truncation.
    pub fn u64(&mut self) -> Result<u64, TevotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its raw IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// Corrupt error at the current offset on truncation.
    pub fn f64(&mut self) -> Result<f64, TevotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length prefix written by the `put_*_slice` helpers,
    /// sanity-checking it against the bytes actually remaining (each
    /// element occupies at least `min_elem_bytes`), so corrupt counts
    /// fail fast instead of attempting enormous allocations.
    ///
    /// # Errors
    ///
    /// Corrupt error when the count cannot fit in the remaining bytes.
    pub fn len_prefix(&mut self, min_elem_bytes: usize) -> Result<usize, TevotError> {
        let at = self.pos;
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        let need = n.checked_mul(min_elem_bytes.max(1) as u64);
        if need.is_none_or(|need| need > remaining.saturating_mul(8)) {
            return Err(TevotError::corrupt(format!(
                "implausible element count {n} at byte {at}: only {remaining} bytes remain"
            )));
        }
        Ok(n as usize)
    }

    /// Reads a `u64`-counted list of little-endian `u64`s.
    ///
    /// # Errors
    ///
    /// Corrupt error on truncation or an implausible count.
    pub fn u64_slice(&mut self) -> Result<Vec<u64>, TevotError> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Reads a `u64`-counted raw byte blob written by
    /// [`ByteWriter::put_bytes`].
    ///
    /// # Errors
    ///
    /// Corrupt error on truncation or an implausible count.
    pub fn bytes(&mut self) -> Result<&'a [u8], TevotError> {
        let n = self.len_prefix(0)?;
        let at = self.pos;
        self.take(n).map_err(|_| {
            TevotError::corrupt(format!(
                "truncated blob at byte {at}: need {n} bytes, {} remain",
                self.buf.len() - at
            ))
        })
    }

    /// Reads a `u64`-counted bit-packed bool vector (LSB-first).
    ///
    /// # Errors
    ///
    /// Corrupt error on truncation or an implausible count.
    pub fn bools(&mut self) -> Result<Vec<bool>, TevotError> {
        let n = self.len_prefix(0)?;
        let bytes = self.take(n.div_ceil(8))?;
        Ok((0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect())
    }
}

/// FNV-1a 64-bit hash; the checkpoint header's checksum function.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ErrorKind;

    #[test]
    fn scalars_round_trip_bit_exactly() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), f64::NAN.to_bits());
        r.finish().unwrap();
    }

    #[test]
    fn slices_and_bools_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u64_slice(&[3, 1, 4, 1, 5]);
        w.put_bools(&[true, false, true, true, false, false, false, true, true]);
        w.put_bools(&[]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u64_slice().unwrap(), vec![3, 1, 4, 1, 5]);
        assert_eq!(
            r.bools().unwrap(),
            vec![true, false, true, true, false, false, false, true, true]
        );
        assert_eq!(r.bools().unwrap(), Vec::<bool>::new());
        r.finish().unwrap();
    }

    #[test]
    fn truncation_names_the_offset() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        r.u8().unwrap();
        let e = r.u64().unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Corrupt);
        assert!(e.to_string().contains("at byte 1"), "{e}");
    }

    #[test]
    fn implausible_counts_fail_fast() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // claimed element count
        let bytes = w.into_bytes();
        let e = ByteReader::new(&bytes).u64_slice().unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Corrupt);
        assert!(e.to_string().contains("implausible"), "{e}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let e = ByteReader::new(&[0]).finish().unwrap_err();
        assert!(e.to_string().contains("trailing"), "{e}");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
