//! Bounded retry with exponential backoff for transient I/O failures.

use std::io;
use std::time::Duration;

/// Retry policy: attempt count and backoff schedule.
#[derive(Debug, Clone, Copy)]
pub struct Retry {
    attempts: u32,
    base_delay: Duration,
    max_delay: Duration,
}

impl Default for Retry {
    fn default() -> Self {
        Retry::new(5, Duration::from_millis(1), Duration::from_millis(50))
    }
}

impl Retry {
    /// A policy making at most `attempts` tries, sleeping
    /// `base_delay * 2^(try - 1)` between them, capped at `max_delay`.
    ///
    /// # Panics
    ///
    /// Panics when `attempts` is zero — a policy that never tries is a
    /// configuration bug.
    pub fn new(attempts: u32, base_delay: Duration, max_delay: Duration) -> Self {
        assert!(attempts > 0, "a retry policy needs at least one attempt");
        Retry { attempts, base_delay, max_delay }
    }

    /// The maximum number of tries (first attempt included).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Runs `op` until it succeeds or the attempt budget is exhausted,
    /// sleeping with exponential backoff between failures. The
    /// operation's name labels retry warnings; the final error (if all
    /// attempts fail) is returned untouched.
    ///
    /// # Errors
    ///
    /// Returns the last attempt's error once the budget is spent.
    pub fn run<T>(&self, what: &str, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut delay = self.base_delay;
        for attempt in 1..=self.attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt < self.attempts => {
                    tevot_obs::metrics::RESIL_RETRIES.incr();
                    tevot_obs::warn!(
                        "{what}: attempt {attempt}/{} failed ({e}); retrying in {delay:?}",
                        self.attempts
                    );
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(self.max_delay);
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the last attempt")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Retry {
        Retry::new(4, Duration::from_micros(1), Duration::from_micros(4))
    }

    #[test]
    fn succeeds_first_try_without_retrying() {
        let mut calls = 0;
        let out = fast().run("op", || {
            calls += 1;
            Ok::<_, io::Error>(7)
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls, 1);
    }

    #[test]
    fn recovers_from_transient_failures() {
        let mut calls = 0;
        let out = fast().run("op", || {
            calls += 1;
            if calls < 3 {
                Err(io::Error::other("transient"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out.unwrap(), 3);
    }

    #[test]
    fn exhausts_budget_and_returns_last_error() {
        let mut calls = 0;
        let out: io::Result<()> = fast().run("op", || {
            calls += 1;
            Err(io::Error::other(format!("failure #{calls}")))
        });
        assert_eq!(calls, 4);
        assert_eq!(out.unwrap_err().to_string(), "failure #4");
    }

    #[test]
    fn recovers_from_injected_faults() {
        // A 50% injected failure rate falls well inside a 5-attempt
        // budget's reach; the deterministic draw sequence makes this
        // test stable.
        let _scope = crate::fail::scoped("retry.test=io@0.5");
        for _ in 0..20 {
            let out = Retry::default().run("op", || {
                crate::fail::eval("retry.test")?;
                Ok(())
            });
            assert!(out.is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_is_rejected() {
        let _ = Retry::new(0, Duration::ZERO, Duration::ZERO);
    }
}
