//! `tevot-resil` — the crash-safety and fault-tolerance layer of the
//! TEVoT pipeline.
//!
//! The characterization stage sweeps every (V, T) operating condition
//! through gate-level simulation before a single model can be trained —
//! exactly the "extensive and expensive circuit characterization" cost
//! the timing-error-modeling literature identifies as the bottleneck. A
//! crashed or killed sweep must not discard hours of work, and failures
//! must surface as typed, recoverable errors instead of panics deep
//! inside worker threads. This crate provides the four building blocks,
//! `std`-only like the rest of the workspace:
//!
//! * [`error`] — the workspace error taxonomy: [`TevotError`] with
//!   context chaining and a stable [`ErrorKind`] → process-exit-code
//!   mapping shared by every binary.
//! * [`fail`] — a zero-dependency failpoint facility. Sites like
//!   `fail_point!("ckpt.write")` are no-op branches (one relaxed atomic
//!   load) until enabled via `TEVOT_FAIL=site=io@0.3,other=panic#2` or
//!   programmatically from tests.
//! * [`retry`] — bounded retry with exponential backoff for transient
//!   I/O failures (including injected ones).
//! * [`checkpoint`] — crash-safe shard files: atomic tmp + fsync +
//!   rename writes with a length/checksum header, so a sweep killed at
//!   any instant leaves only complete, verifiable shards behind.
//! * [`cancel`] — a cooperative [`CancelToken`] plumbed through
//!   `tevot-par`, plus a wall-clock [`Watchdog`] that cancels a runaway
//!   sweep gracefully after flushing partial checkpoints.
//! * [`codec`] — the little-endian byte reader/writer checkpoint
//!   payloads are encoded with, returning [`TevotError`]s that name the
//!   offending byte offset.
//!
//! # Examples
//!
//! ```
//! use tevot_resil::checkpoint::CheckpointDir;
//!
//! let dir = std::env::temp_dir().join(format!("resil_doc_{}", std::process::id()));
//! let ckpt = CheckpointDir::open(&dir).unwrap();
//! ckpt.write("cond-0", b"payload").unwrap();
//! assert_eq!(ckpt.read_valid("cond-0").as_deref(), Some(&b"payload"[..]));
//! assert_eq!(ckpt.read_valid("cond-1"), None);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

pub mod cancel;
pub mod checkpoint;
pub mod codec;
pub mod error;
pub mod fail;
pub mod retry;

pub use cancel::{CancelToken, Watchdog};
pub use error::{ErrorKind, ResultExt, TevotError};

/// Evaluates a failpoint site and propagates an injected I/O error with
/// `?`. Usable in any function whose error type converts from
/// [`std::io::Error`] (including [`TevotError`]); a `panic` action
/// panics at the site instead. Compiles to a single relaxed atomic load
/// plus a never-taken branch when no fault injection is configured.
///
/// ```
/// fn write_side() -> Result<(), tevot_resil::TevotError> {
///     tevot_resil::fail_point!("doc.site");
///     Ok(())
/// }
/// assert!(write_side().is_ok());
/// ```
#[macro_export]
macro_rules! fail_point {
    ($site:literal) => {
        $crate::fail::eval($site)?
    };
}
