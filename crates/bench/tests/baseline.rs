//! Golden-file and exit-code tests for the benchmark-tracking subsystem:
//! the rendered `bench_compare` table must match `tests/golden/`, and the
//! gate binary must demonstrably exit nonzero on a synthetic regression.

use std::path::PathBuf;
use std::process::Command;

use tevot_bench::baseline::{compare, BenchReport, DEFAULT_THRESHOLD};
use tevot_bench::suite::{run_suite, SuiteScale};
use tevot_netlist::fu::FunctionalUnit;

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tevot_bench_test_{}_{name}", std::process::id()));
    p
}

/// A pair of canned reports exercising every verdict: a throughput
/// regression, an in-noise accuracy move, a wall-time improvement, a
/// removed metric and an added one.
fn canned_reports() -> (BenchReport, BenchReport) {
    let mut base = BenchReport::new("baseline");
    base.push("int_add.sim_cycles_per_s", 1200.0, "cycles/s", true);
    base.push("int_add.accuracy_mean", 0.95, "frac", true);
    base.push("train.wall_s", 4.0, "s", false);
    base.push("old.metric", 7.0, "count", true);
    let mut cand = BenchReport::new("pr-42");
    cand.push("int_add.sim_cycles_per_s", 840.0, "cycles/s", true);
    cand.push("int_add.accuracy_mean", 0.96, "frac", true);
    cand.push("train.wall_s", 3.0, "s", false);
    cand.push("new.metric", 2.0, "count", true);
    (base, cand)
}

#[test]
fn rendered_table_matches_golden() {
    let (base, cand) = canned_reports();
    let rendered = compare(&base, &cand, DEFAULT_THRESHOLD).render();
    let golden = include_str!("golden/bench_compare.txt");
    assert_eq!(
        rendered.trim_end(),
        golden.trim_end(),
        "\n--- actual ---\n{rendered}\n--- end actual ---"
    );
}

#[test]
fn gate_binary_exit_codes() {
    let gate = env!("CARGO_BIN_EXE_bench_compare");
    let (base, cand) = canned_reports();
    let base_path = temp_path("base.json");
    let cand_path = temp_path("cand.json");
    base.save(&base_path).unwrap();
    cand.save(&cand_path).unwrap();

    // Synthetic regression (the canned candidate): nonzero exit, and the
    // offending metric is named in the report.
    let out = Command::new(gate).args([&base_path, &cand_path]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "regression must fail the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("int_add.sim_cycles_per_s"), "{stdout}");

    // Report-only does NOT forgive the canned candidate: it *removes*
    // old.metric, and a baseline metric missing from the candidate is
    // structural breakage, not throughput noise.
    let out =
        Command::new(gate).args([&base_path, &cand_path]).arg("--report-only").output().unwrap();
    assert_eq!(out.status.code(), Some(1), "a removed metric must fail even report-only");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("old.metric"), "{stderr}");
    assert!(stderr.contains("report-only"), "{stderr}");

    // A report compared against itself passes.
    let out = Command::new(gate).args([&base_path, &base_path]).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("no regressions"));

    // A generous threshold forgives a pure 30% throughput drop (the
    // canned candidate is still gated at any threshold because it also
    // *removes* a metric, so use a slowdown-only variant here).
    let mut slow = base.clone();
    slow.metrics[0].value = 840.0;
    let slow_path = temp_path("slow.json");
    slow.save(&slow_path).unwrap();
    let out = Command::new(gate).args([&base_path, &slow_path]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let out = Command::new(gate)
        .args([&base_path, &slow_path])
        .args(["--threshold", "0.5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    // A pure slowdown (no missing metric) IS downgraded by report-only.
    let out =
        Command::new(gate).args([&base_path, &slow_path]).arg("--report-only").output().unwrap();
    assert_eq!(out.status.code(), Some(0), "report-only must forgive throughput noise");
    assert!(String::from_utf8_lossy(&out.stdout).contains("report-only"));
    std::fs::remove_file(&slow_path).ok();

    // Usage and load errors exit 2.
    let out = Command::new(gate).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(gate)
        .args([base_path.to_str().unwrap(), "/nonexistent/candidate.json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(gate).args([&base_path, &cand_path]).arg("--bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_file(base_path).ok();
    std::fs::remove_file(cand_path).ok();
}

#[test]
fn suite_smoke_run_tracks_expected_metrics() {
    // One FU at a minimal scale: checks the metric-name contract and the
    // save/load/compare round trip end to end.
    let scale = SuiteScale {
        fus: vec![FunctionalUnit::IntAdd],
        train_vectors: 80,
        test_vectors: 40,
        num_trees: 2,
        sweep_conditions: 2,
        sweep_vectors: 30,
        serve_requests: 50,
        seed: 11,
    };
    let report = run_suite("smoke", &scale);
    for name in [
        "int_add.sim_cycles_per_s",
        "int_add.gate_evals_per_s",
        "int_add.predictions_per_s",
        "int_add.accuracy_mean",
        "featurize.rows_per_s",
        "train.wall_s",
        "sim.levelized_cycles_per_s",
        "sim.speedup_vs_event",
        "par.sweep_conds_per_s",
        "par.sweep_speedup",
        "serve.qps",
        "watch.sample_overhead_ns",
        "watch.expose_per_s",
        "suite.wall_s",
    ] {
        let m = report.metric(name).unwrap_or_else(|| panic!("missing metric {name}"));
        assert!(m.value.is_finite() && m.value > 0.0, "{name} = {}", m.value);
    }
    let acc = report.metric("int_add.accuracy_mean").unwrap();
    assert!(acc.value <= 1.0 && acc.higher_is_better);

    let path = temp_path("smoke.json");
    report.save(&path).unwrap();
    let back = BenchReport::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    // Float round trip is lossy only in formatting, not value identity,
    // because Json::Num prints with enough precision to re-parse f64s.
    let cmp = compare(&report, &back, 0.0);
    assert!(!cmp.has_regressions(), "{}", cmp.render());
}
