//! Tests over the experiment harness itself, at smoke-test scale: the
//! study runner, model training, Table III evaluation and the Table IV
//! quality pipeline must hold their structural invariants before any
//! binary interprets their numbers.

use tevot_bench::config::StudyConfig;
use tevot_bench::models::{
    cell, evaluate_fu, ground_truth_rates, model_rates, quality_study, FuModels, ModelKind,
};
use tevot_bench::study::{dataset_index, DatasetKind, Study};
use tevot_imgproc::Application;
use tevot_netlist::fu::FunctionalUnit;

fn tiny_config() -> StudyConfig {
    let mut config = StudyConfig::tiny();
    config.conditions = tevot_timing::ConditionGrid::new(vec![0.9], vec![25.0]);
    config.train_random = 250;
    config.train_app = 120;
    config.test_len = 80;
    config
}

#[test]
fn study_structure_is_consistent() {
    let study = Study::run_single(tiny_config(), FunctionalUnit::IntAdd);
    assert_eq!(study.fus.len(), 1);
    let fu_study = &study.fus[0];
    assert_eq!(fu_study.conditions.len(), 1);
    let cond = &fu_study.conditions[0];
    // Clock periods are strictly below the fastest error-free base.
    assert_eq!(cond.periods_ps.len(), 3);
    for &p in &cond.periods_ps {
        assert!(p < cond.base_period_ps);
    }
    // Characterizations cover their workloads cycle for cycle.
    assert_eq!(cond.train.num_cycles(), fu_study.train_workload.len());
    for kind in DatasetKind::ALL {
        let idx = dataset_index(kind);
        assert_eq!(cond.tests[idx].num_cycles(), fu_study.test_workloads[idx].len(), "{kind:?}");
        assert_eq!(fu_study.test_workload(kind).name(), kind.name());
    }
    // The corpus was generated at the configured size.
    assert_eq!(study.corpus.len(), 2);
}

#[test]
fn full_model_pipeline_runs_and_orders_models() {
    let study = Study::run_single(tiny_config(), FunctionalUnit::IntAdd);
    let fu_study = &study.fus[0];
    let mut models = FuModels::train(fu_study, 5, 1);
    let cells = evaluate_fu(fu_study, &mut models);
    // 3 datasets x 4 models.
    assert_eq!(cells.len(), 12);
    for dataset in DatasetKind::ALL {
        for model in ModelKind::ALL {
            let c = cell(&cells, dataset, model);
            assert!((0.0..=1.0).contains(&c.mean_accuracy), "{model:?}/{dataset:?}");
            assert_eq!(c.points.len(), 3, "one point per clock speed");
        }
        // TEVoT never loses to the Delay-based baseline.
        let tevot = cell(&cells, dataset, ModelKind::Tevot).mean_accuracy;
        let delay = cell(&cells, dataset, ModelKind::DelayBased).mean_accuracy;
        assert!(tevot >= delay, "{dataset:?}: TEVoT {tevot} < Delay-based {delay}");
    }
}

#[test]
fn quality_pipeline_produces_verdicts_for_all_models() {
    // Needs all four FUs: the applications draw TERs from each.
    let study = Study::run(tiny_config());
    let mut models: Vec<FuModels> = study.fus.iter().map(|f| FuModels::train(f, 3, 2)).collect();

    let truth = ground_truth_rates(&study, Application::Gaussian, 0, 0);
    for fu in FunctionalUnit::ALL {
        assert!((0.0..=1.0).contains(&truth.rate(fu)));
    }
    let predicted = model_rates(&study, &mut models, Application::Gaussian, 0, 0, ModelKind::Tevot);
    for fu in FunctionalUnit::ALL {
        assert!((0.0..=1.0).contains(&predicted.rate(fu)));
    }

    let (accuracies, sim_acceptance) =
        quality_study(&study, &mut models, Application::Gaussian, &study.corpus, 3);
    assert_eq!(accuracies.len(), 4);
    assert!((0.0..=1.0).contains(&sim_acceptance));
    for (model, acc) in accuracies {
        assert!((0.0..=1.0).contains(&acc), "{model:?}");
    }
}
