//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * `ablation_history` — prediction quality with vs without the history
//!   features `x[t-1]` as a function of training-set size (supports the
//!   paper's Sec. IV-B claim that the previous input is load-bearing);
//! * `ablation_forest` — training cost vs tree count and depth (the
//!   "learning method" discussion of Sec. V-E);
//! * `ablation_adder` — characterization cost across the three adder
//!   micro-architectures (the substrate choice that shapes the delay
//!   distribution).
//!
//! The accuracy side of the history/forest ablations lives in
//! `tests/ablations.rs`, where assertions (not timings) are the point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot::dta::Characterizer;
use tevot::workload::random_workload;
use tevot::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
use tevot_ml::ForestParams;
use tevot_netlist::fu::{AdderStyle, FunctionalUnit};
use tevot_timing::{ClockSpeedup, DelayModel, OperatingCondition};

fn cond() -> OperatingCondition {
    OperatingCondition::new(0.9, 50.0)
}

fn bench_history_ablation(c: &mut Criterion) {
    let fu = FunctionalUnit::IntAdd;
    let characterizer = Characterizer::new(fu);
    let train = random_workload(fu, 400, 3);
    let truth = characterizer.characterize(cond(), &train, &ClockSpeedup::PAPER);
    let mut group = c.benchmark_group("ablation_history");
    for encoding in [FeatureEncoding::with_history(), FeatureEncoding::without_history()] {
        let label = if encoding.has_history() { "with_history_130" } else { "no_history_66" };
        let data = build_delay_dataset(encoding, &[(&train, &truth)]);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(0);
                let params = TevotParams { encoding, ..TevotParams::default() };
                std::hint::black_box(TevotModel::train(&data, &params, &mut rng))
            });
        });
    }
    group.finish();
}

fn bench_forest_ablation(c: &mut Criterion) {
    let fu = FunctionalUnit::IntAdd;
    let characterizer = Characterizer::new(fu);
    let train = random_workload(fu, 400, 3);
    let truth = characterizer.characterize(cond(), &train, &ClockSpeedup::PAPER);
    let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&train, &truth)]);
    let mut group = c.benchmark_group("ablation_forest");
    for trees in [1usize, 5, 10, 20] {
        group.bench_with_input(BenchmarkId::new("trees", trees), &trees, |b, &trees| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(0);
                let params = TevotParams {
                    forest: ForestParams { num_trees: trees, ..ForestParams::default() },
                    ..TevotParams::default()
                };
                std::hint::black_box(TevotModel::train(&data, &params, &mut rng))
            });
        });
    }
    group.finish();
}

fn bench_adder_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_adder");
    for style in [AdderStyle::RippleCarry, AdderStyle::CarryLookahead, AdderStyle::KoggeStone] {
        let fu = FunctionalUnit::IntAdd;
        let nl = fu.build_with_adder_style(style);
        let characterizer = Characterizer::with_netlist(fu, nl, DelayModel::tsmc45_like());
        let work = random_workload(fu, 64, 1);
        group.bench_function(format!("{style:?}"), |b| {
            b.iter(|| std::hint::black_box(characterizer.trace(cond(), &work)));
        });
    }
    group.finish();
}

fn bench_multiplier_ablation(c: &mut Criterion) {
    use tevot_netlist::fu::{int_mul_with_style, MultiplierStyle};
    let mut group = c.benchmark_group("ablation_multiplier");
    group.sample_size(10);
    for style in [MultiplierStyle::RippleArray, MultiplierStyle::CarrySave, MultiplierStyle::Booth]
    {
        let fu = FunctionalUnit::IntMul;
        let nl = int_mul_with_style(style);
        let characterizer = Characterizer::with_netlist(fu, nl, DelayModel::tsmc45_like());
        let work = random_workload(fu, 16, 1);
        group.bench_function(format!("{style:?}"), |b| {
            b.iter(|| std::hint::black_box(characterizer.trace(cond(), &work)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_history_ablation, bench_forest_ablation, bench_adder_ablation,
        bench_multiplier_ablation
}
criterion_main!(benches);
