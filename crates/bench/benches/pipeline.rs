//! Criterion micro-benchmarks for the core pipeline stages: gate-level
//! simulation throughput per FU, static timing analysis, feature
//! generation, forest training, TEVoT inference, and the headline
//! model-vs-simulation speedup ratio (paper Sec. V-C).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot::dta::Characterizer;
use tevot::workload::random_workload;
use tevot::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
use tevot_netlist::fu::FunctionalUnit;
use tevot_sim::TimingSimulator;
use tevot_timing::{sta, ClockSpeedup, DelayModel, OperatingCondition};

fn cond() -> OperatingCondition {
    OperatingCondition::new(0.9, 50.0)
}

fn bench_gate_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_sim");
    for fu in FunctionalUnit::ALL {
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, cond());
        let vectors: Vec<Vec<bool>> = random_workload(fu, 64, 1)
            .operands()
            .iter()
            .map(|&(a, b)| fu.encode_operands(a, b))
            .collect();
        group.throughput(Throughput::Elements(vectors.len() as u64));
        group.bench_function(fu.name(), |bench| {
            bench.iter_batched(
                || TimingSimulator::new(&nl, &ann),
                |mut sim| {
                    for v in &vectors {
                        std::hint::black_box(sim.step(v).dynamic_delay_ps());
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_sta(c: &mut Criterion) {
    let mut group = c.benchmark_group("sta");
    for fu in [FunctionalUnit::IntAdd, FunctionalUnit::IntMul] {
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, cond());
        group.bench_function(fu.name(), |bench| {
            bench.iter(|| std::hint::black_box(sta::run(&nl, &ann).critical_delay_ps()));
        });
    }
    group.finish();
}

fn bench_feature_gen(c: &mut Criterion) {
    let encoding = FeatureEncoding::with_history();
    let mut buf = Vec::new();
    c.bench_function("feature_gen/encode_130", |bench| {
        bench.iter(|| {
            encoding.encode_into(
                cond(),
                std::hint::black_box((0xDEAD_BEEF, 0x1234_5678)),
                std::hint::black_box((0x0BAD_F00D, 0xFEED_FACE)),
                &mut buf,
            );
            std::hint::black_box(buf.len())
        });
    });
}

fn trained_model(fu: FunctionalUnit, n: usize) -> (TevotModel, tevot::Workload) {
    let characterizer = Characterizer::new(fu);
    let train = random_workload(fu, n, 3);
    let truth = characterizer.characterize(cond(), &train, &ClockSpeedup::PAPER);
    let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&train, &truth)]);
    let mut rng = SmallRng::seed_from_u64(0);
    (TevotModel::train(&data, &TevotParams::default(), &mut rng), train)
}

fn bench_training(c: &mut Criterion) {
    let fu = FunctionalUnit::IntAdd;
    let characterizer = Characterizer::new(fu);
    let train = random_workload(fu, 600, 3);
    let truth = characterizer.characterize(cond(), &train, &ClockSpeedup::PAPER);
    let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&train, &truth)]);
    c.bench_function("training/rf_600x130", |bench| {
        bench.iter(|| {
            let mut rng = SmallRng::seed_from_u64(0);
            std::hint::black_box(TevotModel::train(&data, &TevotParams::default(), &mut rng))
        });
    });
}

fn bench_inference(c: &mut Criterion) {
    let (model, train) = trained_model(FunctionalUnit::IntAdd, 600);
    let ops = train.operands();
    let mut group = c.benchmark_group("inference");
    group.throughput(Throughput::Elements(1));
    group.bench_function("predict_delay", |bench| {
        let mut t = 1;
        bench.iter(|| {
            let d = model.predict_delay_ps(cond(), ops[t], ops[t - 1]);
            t = if t + 1 < ops.len() { t + 1 } else { 1 };
            std::hint::black_box(d)
        });
    });
    group.finish();
}

/// The Sec. V-C claim in benchmark form: one gate-level simulated cycle vs
/// one TEVoT prediction, side by side per FU.
fn bench_model_vs_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_vs_sim");
    for fu in [FunctionalUnit::IntAdd, FunctionalUnit::IntMul] {
        let (model, work) = trained_model(fu, 400);
        let nl = fu.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, cond());
        let ops = work.operands();
        let vectors: Vec<Vec<bool>> = ops.iter().map(|&(a, b)| fu.encode_operands(a, b)).collect();

        group.bench_function(format!("{}/simulation", fu.name()), |bench| {
            bench.iter_batched(
                || TimingSimulator::new(&nl, &ann),
                |mut sim| {
                    for v in vectors.iter().take(16) {
                        std::hint::black_box(sim.step(v).dynamic_delay_ps());
                    }
                },
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("{}/tevot", fu.name()), |bench| {
            bench.iter(|| {
                for t in 1..17 {
                    std::hint::black_box(model.predict_delay_ps(cond(), ops[t], ops[t - 1]));
                }
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gate_sim, bench_sta, bench_feature_gen, bench_training,
        bench_inference, bench_model_vs_sim
}
criterion_main!(benches);
