//! Criterion benchmarks for the application substrate: Sobel/Gaussian
//! filter throughput under exact, profiling and fault-injecting
//! arithmetic, plus PSNR scoring.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tevot_imgproc::synth::synthetic_image;
use tevot_imgproc::{
    psnr_db, Application, ExactArithmetic, FaultyArithmetic, FuErrorRates, ProfilingArithmetic,
};

fn bench_filters(c: &mut Criterion) {
    let image = synthetic_image(64, 64, 42);
    let mut group = c.benchmark_group("filters");
    group.throughput(Throughput::Elements((64 * 64) as u64));
    for app in Application::ALL {
        group.bench_function(format!("{app}/exact"), |b| {
            b.iter(|| std::hint::black_box(app.run(&image, &mut ExactArithmetic)));
        });
        group.bench_function(format!("{app}/profiling"), |b| {
            b.iter(|| {
                let mut prof = ProfilingArithmetic::new();
                std::hint::black_box(app.run(&image, &mut prof))
            });
        });
        group.bench_function(format!("{app}/faulty"), |b| {
            let rates = FuErrorRates { int_add: 0.01, int_mul: 0.01, fp_add: 0.01, fp_mul: 0.01 };
            b.iter(|| {
                let mut faulty = FaultyArithmetic::new(rates, 7);
                std::hint::black_box(app.run(&image, &mut faulty))
            });
        });
    }
    group.finish();
}

fn bench_psnr(c: &mut Criterion) {
    let a = synthetic_image(128, 128, 1);
    let b_img = synthetic_image(128, 128, 2);
    c.bench_function("psnr_128x128", |b| {
        b.iter(|| std::hint::black_box(psnr_db(&a, &b_img)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_filters, bench_psnr
}
criterion_main!(benches);
