//! The shared DTA study: workload construction and per-condition
//! characterization for all four FUs — the data everything from Fig. 3 to
//! Table IV is computed from.

use tevot::dta::{Characterization, Characterizer};
use tevot::workload::{characterization_workload, random_workload};
use tevot::Workload;
use tevot_imgproc::profile::profile_application;
use tevot_imgproc::synth::synthetic_corpus;
use tevot_imgproc::{Application, GrayImage};
use tevot_netlist::fu::FunctionalUnit;
use tevot_resil::checkpoint::CheckpointDir;
use tevot_resil::codec::{fnv1a64, ByteReader, ByteWriter};
use tevot_resil::{CancelToken, ResultExt, TevotError, Watchdog};
use tevot_timing::OperatingCondition;

use crate::config::StudyConfig;

/// The three evaluation datasets of the paper (Table III columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Uniformly random operands.
    Random,
    /// Operands profiled from the Sobel filter.
    Sobel,
    /// Operands profiled from the Gaussian filter.
    Gauss,
}

impl DatasetKind {
    /// All datasets in the paper's column order.
    pub const ALL: [DatasetKind; 3] = [DatasetKind::Random, DatasetKind::Sobel, DatasetKind::Gauss];

    /// The paper's dataset label.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Random => "random_data",
            DatasetKind::Sobel => "sobel_data",
            DatasetKind::Gauss => "gauss_data",
        }
    }

    /// The application a dataset was profiled from, if any.
    pub fn application(self) -> Option<Application> {
        match self {
            DatasetKind::Random => None,
            DatasetKind::Sobel => Some(Application::Sobel),
            DatasetKind::Gauss => Some(Application::Gaussian),
        }
    }
}

/// Everything characterized at one operating condition for one FU.
#[derive(Debug, Clone)]
pub struct ConditionStudy {
    /// The operating condition.
    pub condition: OperatingCondition,
    /// The fastest error-free period (max dynamic delay of the training
    /// workload) that the clock speedups are applied to.
    pub base_period_ps: u64,
    /// The overclocked periods, one per configured speedup.
    pub periods_ps: Vec<u64>,
    /// Characterization of the (mixed) training workload.
    pub train: Characterization,
    /// Characterization of the Fmax suite that set the base period (the
    /// "maximum delay measured offline", which the Delay-based baseline
    /// calibrates against).
    pub fmax: Characterization,
    /// Characterizations of the test datasets, indexed like
    /// [`DatasetKind::ALL`].
    pub tests: Vec<Characterization>,
}

impl ConditionStudy {
    /// Serializes the condition study to the checkpoint payload format
    /// (bit-exact; see [`Characterization::to_bytes`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(1); // payload format version
        w.put_f64(self.condition.voltage());
        w.put_f64(self.condition.temperature());
        w.put_u64(self.base_period_ps);
        w.put_u64_slice(&self.periods_ps);
        w.put_bytes(&self.train.to_bytes());
        w.put_bytes(&self.fmax.to_bytes());
        w.put_u64(self.tests.len() as u64);
        for t in &self.tests {
            w.put_bytes(&t.to_bytes());
        }
        w.into_bytes()
    }

    /// Deserializes a condition study written by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`tevot_resil::ErrorKind::Corrupt`] on truncation, an unknown
    /// version, or an implausible condition.
    pub fn from_bytes(bytes: &[u8]) -> Result<ConditionStudy, TevotError> {
        let mut r = ByteReader::new(bytes);
        let version = r.u8()?;
        if version != 1 {
            return Err(r.corrupt(format!("unsupported condition-study version {version}")));
        }
        let voltage = r.f64()?;
        let temperature = r.f64()?;
        if !(voltage.is_finite() && voltage > 0.0 && temperature.is_finite()) {
            return Err(r.corrupt(format!(
                "implausible operating condition ({voltage} V, {temperature} C)"
            )));
        }
        let base_period_ps = r.u64()?;
        let periods_ps = r.u64_slice()?;
        let train = Characterization::from_bytes(r.bytes()?).ctx(|| "train block".into())?;
        let fmax = Characterization::from_bytes(r.bytes()?).ctx(|| "fmax block".into())?;
        let num_tests = r.len_prefix(1)?;
        let tests = (0..num_tests)
            .map(|i| Characterization::from_bytes(r.bytes()?).ctx(|| format!("test block {i}")))
            .collect::<Result<Vec<_>, _>>()?;
        r.finish()?;
        Ok(ConditionStudy {
            condition: OperatingCondition::new(voltage, temperature),
            base_period_ps,
            periods_ps,
            train,
            fmax,
            tests,
        })
    }
}

/// One FU's workloads plus its characterizations across all conditions.
#[derive(Debug)]
pub struct FuStudy {
    /// The functional unit.
    pub fu: FunctionalUnit,
    /// The mixed training workload (random + application slices, like the
    /// paper's 200 K random + 5 % images).
    pub train_workload: Workload,
    /// Test workloads indexed like [`DatasetKind::ALL`].
    pub test_workloads: Vec<Workload>,
    /// Per-condition characterizations.
    pub conditions: Vec<ConditionStudy>,
}

impl FuStudy {
    /// The test workload for one dataset.
    pub fn test_workload(&self, kind: DatasetKind) -> &Workload {
        &self.test_workloads[dataset_index(kind)]
    }
}

/// Index of a dataset inside the study vectors.
pub fn dataset_index(kind: DatasetKind) -> usize {
    DatasetKind::ALL.iter().position(|&k| k == kind).expect("known dataset")
}

/// Stable shard-name tag of a unit (its index in [`FunctionalUnit::ALL`]).
fn fu_tag(fu: FunctionalUnit) -> usize {
    FunctionalUnit::ALL.iter().position(|&f| f == fu).expect("known unit")
}

/// Prints a study failure and exits with its taxonomy exit code — the
/// shared failure path of the infallible [`Study::run`] wrappers every
/// experiment binary uses.
fn exit_with(e: TevotError) -> ! {
    eprintln!("error ({}): {e}", e.kind().label());
    std::process::exit(e.exit_code() as i32)
}

/// The complete DTA study for all four FUs.
#[derive(Debug)]
pub struct Study {
    /// The configuration it was run with.
    pub config: StudyConfig,
    /// The synthetic image corpus (shared with the quality experiments).
    pub corpus: Vec<GrayImage>,
    /// Per-FU studies, indexed like [`FunctionalUnit::ALL`].
    pub fus: Vec<FuStudy>,
}

impl Study {
    /// Runs the whole study: generates workloads, profiles the
    /// applications, and characterizes every (FU, condition, dataset)
    /// combination. Progress goes to stderr.
    ///
    /// Convenience wrapper over [`Self::try_run`] for experiment
    /// binaries: on failure (a corrupt `--resume` directory, an
    /// exhausted I/O retry budget, a fired `--deadline-ms` watchdog) it
    /// prints the error and exits with the taxonomy's stable exit code.
    pub fn run(config: StudyConfig) -> Study {
        Self::try_run(config).unwrap_or_else(|e| exit_with(e))
    }

    /// Runs the study for a single FU (useful for focused experiments);
    /// exits on failure like [`Self::run`].
    pub fn run_single(config: StudyConfig, fu: FunctionalUnit) -> Study {
        Self::try_run_single(config, fu).unwrap_or_else(|e| exit_with(e))
    }

    /// Fallible form of [`Self::run`].
    ///
    /// # Errors
    ///
    /// [`tevot_resil::ErrorKind::Corrupt`] when the `--resume` directory
    /// belongs to a different configuration,
    /// [`tevot_resil::ErrorKind::Cancelled`] when the `--deadline-ms`
    /// watchdog fires (completed conditions stay checkpointed), and
    /// [`tevot_resil::ErrorKind::Io`] when checkpoint writes fail after
    /// retries.
    pub fn try_run(config: StudyConfig) -> Result<Study, TevotError> {
        Self::try_run_for(config, &FunctionalUnit::ALL)
    }

    /// Fallible form of [`Self::run_single`]; see [`Self::try_run`].
    ///
    /// # Errors
    ///
    /// As for [`Self::try_run`].
    pub fn try_run_single(config: StudyConfig, fu: FunctionalUnit) -> Result<Study, TevotError> {
        Self::try_run_for(config, &[fu])
    }

    /// The fingerprint of everything that shapes a study's output:
    /// condition grid, speedups, workload sizes, seed, and unit list.
    /// Two studies may share a `--resume` directory only when their
    /// fingerprints match. Observability knobs (jobs, verbosity, output
    /// paths) are deliberately excluded — they never change results.
    fn fingerprint(config: &StudyConfig, fus: &[FunctionalUnit]) -> u64 {
        let mut w = ByteWriter::new();
        for &v in config.conditions.voltages() {
            w.put_f64(v);
        }
        w.put_u64(u64::MAX); // axis separator
        for &t in config.conditions.temperatures() {
            w.put_f64(t);
        }
        w.put_u64(config.speedups.len() as u64);
        for s in &config.speedups {
            w.put_f64(s.fraction());
        }
        for n in [
            config.train_random,
            config.train_app,
            config.test_len,
            config.corpus_images,
            config.image_size,
            config.num_trees,
            config.characterization_len,
        ] {
            w.put_u64(n as u64);
        }
        w.put_u64(config.seed);
        for &fu in fus {
            w.put_u8(fu_tag(fu) as u8);
        }
        fnv1a64(&w.into_bytes())
    }

    fn try_run_for(config: StudyConfig, fus: &[FunctionalUnit]) -> Result<Study, TevotError> {
        let _study_span = tevot_obs::span!("study");
        let ckpt = match &config.resume {
            Some(dir) => {
                let ckpt = CheckpointDir::open(dir)?;
                ckpt.bind_manifest(Self::fingerprint(&config, fus))?;
                Some(ckpt)
            }
            None => None,
        };
        let token = CancelToken::new();
        let _watchdog = config
            .deadline_ms
            .map(|ms| Watchdog::deadline(&token, std::time::Duration::from_millis(ms)));

        let corpus = synthetic_corpus(
            config.corpus_images,
            config.image_size,
            config.image_size,
            config.seed,
        );
        tevot_obs::info!("profiling application workloads...");
        let ops_needed = config.train_app + config.test_len;
        let (sobel, gauss) = {
            let _span = tevot_obs::span!("profile");
            (
                profile_application(Application::Sobel, &corpus, ops_needed),
                profile_application(Application::Gaussian, &corpus, ops_needed),
            )
        };
        let fus = fus
            .iter()
            .map(|&fu| Self::run_fu(&config, fu, &sobel, &gauss, ckpt.as_ref(), &token))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Study { config, corpus, fus })
    }

    fn run_fu(
        config: &StudyConfig,
        fu: FunctionalUnit,
        sobel: &tevot_imgproc::profile::ApplicationProfile,
        gauss: &tevot_imgproc::profile::ApplicationProfile,
        ckpt: Option<&CheckpointDir>,
        token: &CancelToken,
    ) -> Result<FuStudy, TevotError> {
        let train_random = random_workload(fu, config.train_random, config.seed);
        let sobel_all = sobel.workload(fu);
        let gauss_all = gauss.workload(fu);
        let train = train_random
            .concat(&sobel_all.truncated(config.train_app), "train")
            .concat(&gauss_all.truncated(config.train_app), "train_mixed");

        let test_random = random_workload(fu, config.test_len, config.seed + 1);
        let tail = |w: &Workload, name: &str| {
            let ops = w.operands();
            let start = ops.len().saturating_sub(config.test_len);
            Workload::new(name, ops[start..].to_vec())
        };
        let test_sobel = tail(sobel_all, "sobel_data");
        let test_gauss = tail(gauss_all, "gauss_data");

        let characterizer = Characterizer::new(fu);
        let fmax_suite = characterization_workload(fu, config.characterization_len, config.seed);
        // The "fastest error-free clock frequency" the speedups are
        // applied to is measured the way a DVFS table is built: per
        // *voltage*, at the characterization temperature (25 C), with a
        // suite of random vectors plus directed corner transitions (full
        // carry-propagate runs, massive cancellations, maximum alignment
        // shifts) so the long sensitizable paths are represented. The die
        // then runs at whatever temperature it runs at — the dynamic
        // variation the paper models — so the effective margin (and the
        // error rate) genuinely varies across the (V, T) grid, including
        // the inverse-temperature-dependence corner where a *cold* die at
        // low voltage is the slow one.
        let mut voltages: Vec<f64> = Vec::new();
        for cond in config.conditions.iter() {
            if !voltages.iter().any(|&v| (v - cond.voltage()).abs() < 5e-4) {
                voltages.push(cond.voltage());
            }
        }
        let base_by_voltage: Vec<(f64, u64)> = tevot_par::map(&voltages, |&v| {
            let char_cond = OperatingCondition::new(v, 25.0);
            (v, characterizer.trace(char_cond, &fmax_suite).fastest_error_free_period_ps())
        });
        let base_at = |v: f64| -> u64 {
            base_by_voltage
                .iter()
                .find(|&&(bv, _)| (bv - v).abs() < 5e-4)
                .expect("every condition voltage was pre-measured")
                .1
        };
        let _span = tevot_obs::span!("characterize");
        // Restore conditions already journaled to the checkpoint
        // directory; only the rest are re-characterized.
        let grid: Vec<OperatingCondition> = config.conditions.iter().collect();
        let shard_name = |i: usize| format!("fu{}-cond-{i}", fu_tag(fu));
        let mut conditions: Vec<Option<ConditionStudy>> = Vec::with_capacity(grid.len());
        let mut missing: Vec<usize> = Vec::new();
        for (i, &cond) in grid.iter().enumerate() {
            let restored = ckpt.and_then(|c| c.read_valid(&shard_name(i))).and_then(|payload| {
                match ConditionStudy::from_bytes(&payload) {
                    Ok(cs) if cs.condition == cond => Some(cs),
                    Ok(_) => {
                        tevot_obs::warn!(
                            "checkpoint: shard {} is for another condition",
                            shard_name(i)
                        );
                        None
                    }
                    Err(e) => {
                        tevot_obs::warn!("checkpoint: shard {} undecodable ({e})", shard_name(i));
                        None
                    }
                }
            });
            if restored.is_none() {
                missing.push(i);
            } else {
                tevot_obs::metrics::RESIL_CKPT_SHARDS_RESUMED.incr();
            }
            conditions.push(restored);
        }
        if ckpt.is_some() && missing.len() < grid.len() {
            tevot_obs::info!(
                "characterize {fu}: resuming, {} of {} conditions already checkpointed",
                grid.len() - missing.len(),
                grid.len()
            );
        }

        let progress =
            tevot_obs::progress::Progress::new(format!("characterize {fu}"), missing.len() as u64);
        // One `tevot-par` task per condition; the ordered reduction keeps
        // `conditions` in grid order, identical to the old serial loop.
        let computed = tevot_par::map_cancellable(token, &missing, |&i| {
            let cond = grid[i];
            tevot_obs::debug!("{fu} @ {cond}");
            let base = base_at(cond.voltage());
            // The per-condition Fmax measurement still exists offline — it
            // is what the Delay-based baseline calibrates against.
            let fmax_trace = characterizer.trace(cond, &fmax_suite);
            let train_trace = characterizer.trace(cond, &train);
            let periods: Vec<u64> =
                config.speedups.iter().map(|s| s.apply_to_period(base)).collect();
            let train_char = train_trace.characterization(&periods);
            let fmax_char = fmax_trace.characterization(&periods);
            let tests = [&test_random, &test_sobel, &test_gauss]
                .iter()
                .map(|w| characterizer.trace(cond, w).characterization(&periods))
                .collect();
            let study = ConditionStudy {
                condition: cond,
                base_period_ps: base,
                periods_ps: periods,
                train: train_char,
                fmax: fmax_char,
                tests,
            };
            // Journal the finished condition before reporting progress, so
            // a crash immediately after the tick never loses it.
            let write = match ckpt {
                Some(c) => c.write(&shard_name(i), &study.to_bytes()),
                None => Ok(()),
            };
            progress.tick();
            write.map(|()| study)
        })?;
        progress.finish();
        for (slot, outcome) in missing.into_iter().zip(computed) {
            conditions[slot] = Some(outcome.ctx(|| format!("checkpoint {}", shard_name(slot)))?);
        }
        Ok(FuStudy {
            fu,
            train_workload: train,
            test_workloads: vec![test_random, test_sobel, test_gauss],
            conditions: conditions
                .into_iter()
                .map(|c| c.expect("every condition filled"))
                .collect(),
        })
    }

    /// The study of one FU.
    ///
    /// # Panics
    ///
    /// Panics if the FU was not part of the study.
    pub fn fu(&self, fu: FunctionalUnit) -> &FuStudy {
        self.fus.iter().find(|s| s.fu == fu).expect("FU not studied")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tevot_timing::ConditionGrid;

    fn micro_config() -> StudyConfig {
        StudyConfig {
            conditions: ConditionGrid::new(vec![0.9, 1.0], vec![25.0]),
            train_random: 60,
            train_app: 30,
            test_len: 30,
            corpus_images: 1,
            image_size: 16,
            characterization_len: 40,
            ..StudyConfig::tiny()
        }
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tevot_study_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assert_same_study(a: &Study, b: &Study) {
        assert_eq!(a.fus.len(), b.fus.len());
        for (fa, fb) in a.fus.iter().zip(&b.fus) {
            assert_eq!(fa.fu, fb.fu);
            assert_eq!(fa.conditions.len(), fb.conditions.len());
            for (ca, cb) in fa.conditions.iter().zip(&fb.conditions) {
                assert_eq!(ca.condition, cb.condition);
                assert_eq!(ca.base_period_ps, cb.base_period_ps);
                assert_eq!(ca.periods_ps, cb.periods_ps);
                assert_eq!(ca.train, cb.train);
                assert_eq!(ca.fmax, cb.fmax);
                assert_eq!(ca.tests, cb.tests);
            }
        }
    }

    #[test]
    fn condition_study_bytes_round_trip() {
        let study = Study::try_run_single(micro_config(), FunctionalUnit::IntAdd).unwrap();
        let cs = &study.fus[0].conditions[0];
        let restored = ConditionStudy::from_bytes(&cs.to_bytes()).unwrap();
        assert_eq!(restored.condition, cs.condition);
        assert_eq!(restored.base_period_ps, cs.base_period_ps);
        assert_eq!(restored.periods_ps, cs.periods_ps);
        assert_eq!(restored.train, cs.train);
        assert_eq!(restored.fmax, cs.fmax);
        assert_eq!(restored.tests, cs.tests);

        let bytes = cs.to_bytes();
        for cut in [0, 1, 10, bytes.len() - 1] {
            let e = ConditionStudy::from_bytes(&bytes[..cut]).unwrap_err();
            assert_eq!(e.kind(), tevot_resil::ErrorKind::Corrupt, "cut at {cut}");
        }
    }

    #[test]
    fn resumed_study_is_bit_identical_and_skips_shards() {
        let dir = scratch("resume");
        let plain = Study::try_run_single(micro_config(), FunctionalUnit::IntAdd).unwrap();

        let mut config = micro_config();
        config.resume = Some(dir.clone());
        let first = Study::try_run_single(config.clone(), FunctionalUnit::IntAdd).unwrap();
        assert_same_study(&plain, &first);

        let before = tevot_obs::metrics::RESIL_CKPT_SHARDS_RESUMED.get();
        let second = Study::try_run_single(config, FunctionalUnit::IntAdd).unwrap();
        assert_same_study(&plain, &second);
        assert_eq!(
            tevot_obs::metrics::RESIL_CKPT_SHARDS_RESUMED.get(),
            before + plain.fus[0].conditions.len() as u64
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_dir_of_other_config_is_refused() {
        let dir = scratch("refuse");
        let mut config = micro_config();
        config.resume = Some(dir.clone());
        Study::try_run_single(config.clone(), FunctionalUnit::IntAdd).unwrap();
        config.seed += 1;
        let e = Study::try_run_single(config, FunctionalUnit::IntAdd).unwrap_err();
        assert_eq!(e.kind(), tevot_resil::ErrorKind::Corrupt);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_deadline_cancels_and_leaves_resumable_checkpoints() {
        let dir = scratch("deadline");
        let mut config = micro_config();
        config.resume = Some(dir.clone());
        config.deadline_ms = Some(0);
        let e = Study::try_run_single(config.clone(), FunctionalUnit::IntAdd).unwrap_err();
        assert_eq!(e.kind(), tevot_resil::ErrorKind::Cancelled);
        assert_eq!(e.exit_code(), 6);

        // Disarm the deadline and resume: the run completes and matches
        // an uninterrupted study.
        config.deadline_ms = None;
        let resumed = Study::try_run_single(config, FunctionalUnit::IntAdd).unwrap();
        let plain = Study::try_run_single(micro_config(), FunctionalUnit::IntAdd).unwrap();
        assert_same_study(&plain, &resumed);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
