//! The shared DTA study: workload construction and per-condition
//! characterization for all four FUs — the data everything from Fig. 3 to
//! Table IV is computed from.

use tevot::dta::{Characterization, Characterizer};
use tevot::workload::{characterization_workload, random_workload};
use tevot::Workload;
use tevot_imgproc::profile::profile_application;
use tevot_imgproc::synth::synthetic_corpus;
use tevot_imgproc::{Application, GrayImage};
use tevot_netlist::fu::FunctionalUnit;
use tevot_timing::OperatingCondition;

use crate::config::StudyConfig;

/// The three evaluation datasets of the paper (Table III columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Uniformly random operands.
    Random,
    /// Operands profiled from the Sobel filter.
    Sobel,
    /// Operands profiled from the Gaussian filter.
    Gauss,
}

impl DatasetKind {
    /// All datasets in the paper's column order.
    pub const ALL: [DatasetKind; 3] = [DatasetKind::Random, DatasetKind::Sobel, DatasetKind::Gauss];

    /// The paper's dataset label.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Random => "random_data",
            DatasetKind::Sobel => "sobel_data",
            DatasetKind::Gauss => "gauss_data",
        }
    }

    /// The application a dataset was profiled from, if any.
    pub fn application(self) -> Option<Application> {
        match self {
            DatasetKind::Random => None,
            DatasetKind::Sobel => Some(Application::Sobel),
            DatasetKind::Gauss => Some(Application::Gaussian),
        }
    }
}

/// Everything characterized at one operating condition for one FU.
#[derive(Debug, Clone)]
pub struct ConditionStudy {
    /// The operating condition.
    pub condition: OperatingCondition,
    /// The fastest error-free period (max dynamic delay of the training
    /// workload) that the clock speedups are applied to.
    pub base_period_ps: u64,
    /// The overclocked periods, one per configured speedup.
    pub periods_ps: Vec<u64>,
    /// Characterization of the (mixed) training workload.
    pub train: Characterization,
    /// Characterization of the Fmax suite that set the base period (the
    /// "maximum delay measured offline", which the Delay-based baseline
    /// calibrates against).
    pub fmax: Characterization,
    /// Characterizations of the test datasets, indexed like
    /// [`DatasetKind::ALL`].
    pub tests: Vec<Characterization>,
}

/// One FU's workloads plus its characterizations across all conditions.
#[derive(Debug)]
pub struct FuStudy {
    /// The functional unit.
    pub fu: FunctionalUnit,
    /// The mixed training workload (random + application slices, like the
    /// paper's 200 K random + 5 % images).
    pub train_workload: Workload,
    /// Test workloads indexed like [`DatasetKind::ALL`].
    pub test_workloads: Vec<Workload>,
    /// Per-condition characterizations.
    pub conditions: Vec<ConditionStudy>,
}

impl FuStudy {
    /// The test workload for one dataset.
    pub fn test_workload(&self, kind: DatasetKind) -> &Workload {
        &self.test_workloads[dataset_index(kind)]
    }
}

/// Index of a dataset inside the study vectors.
pub fn dataset_index(kind: DatasetKind) -> usize {
    DatasetKind::ALL.iter().position(|&k| k == kind).expect("known dataset")
}

/// The complete DTA study for all four FUs.
#[derive(Debug)]
pub struct Study {
    /// The configuration it was run with.
    pub config: StudyConfig,
    /// The synthetic image corpus (shared with the quality experiments).
    pub corpus: Vec<GrayImage>,
    /// Per-FU studies, indexed like [`FunctionalUnit::ALL`].
    pub fus: Vec<FuStudy>,
}

impl Study {
    /// Runs the whole study: generates workloads, profiles the
    /// applications, and characterizes every (FU, condition, dataset)
    /// combination. Progress goes to stderr.
    pub fn run(config: StudyConfig) -> Study {
        Self::run_for(config, &FunctionalUnit::ALL)
    }

    /// Runs the study for a single FU (useful for focused experiments).
    pub fn run_single(config: StudyConfig, fu: FunctionalUnit) -> Study {
        Self::run_for(config, &[fu])
    }

    fn run_for(config: StudyConfig, fus: &[FunctionalUnit]) -> Study {
        let _study_span = tevot_obs::span!("study");
        let corpus = synthetic_corpus(
            config.corpus_images,
            config.image_size,
            config.image_size,
            config.seed,
        );
        tevot_obs::info!("profiling application workloads...");
        let ops_needed = config.train_app + config.test_len;
        let (sobel, gauss) = {
            let _span = tevot_obs::span!("profile");
            (
                profile_application(Application::Sobel, &corpus, ops_needed),
                profile_application(Application::Gaussian, &corpus, ops_needed),
            )
        };
        let fus = fus.iter().map(|&fu| Self::run_fu(&config, fu, &sobel, &gauss)).collect();
        Study { config, corpus, fus }
    }

    fn run_fu(
        config: &StudyConfig,
        fu: FunctionalUnit,
        sobel: &tevot_imgproc::profile::ApplicationProfile,
        gauss: &tevot_imgproc::profile::ApplicationProfile,
    ) -> FuStudy {
        let train_random = random_workload(fu, config.train_random, config.seed);
        let sobel_all = sobel.workload(fu);
        let gauss_all = gauss.workload(fu);
        let train = train_random
            .concat(&sobel_all.truncated(config.train_app), "train")
            .concat(&gauss_all.truncated(config.train_app), "train_mixed");

        let test_random = random_workload(fu, config.test_len, config.seed + 1);
        let tail = |w: &Workload, name: &str| {
            let ops = w.operands();
            let start = ops.len().saturating_sub(config.test_len);
            Workload::new(name, ops[start..].to_vec())
        };
        let test_sobel = tail(sobel_all, "sobel_data");
        let test_gauss = tail(gauss_all, "gauss_data");

        let characterizer = Characterizer::new(fu);
        let fmax_suite = characterization_workload(fu, config.characterization_len, config.seed);
        // The "fastest error-free clock frequency" the speedups are
        // applied to is measured the way a DVFS table is built: per
        // *voltage*, at the characterization temperature (25 C), with a
        // suite of random vectors plus directed corner transitions (full
        // carry-propagate runs, massive cancellations, maximum alignment
        // shifts) so the long sensitizable paths are represented. The die
        // then runs at whatever temperature it runs at — the dynamic
        // variation the paper models — so the effective margin (and the
        // error rate) genuinely varies across the (V, T) grid, including
        // the inverse-temperature-dependence corner where a *cold* die at
        // low voltage is the slow one.
        let mut voltages: Vec<f64> = Vec::new();
        for cond in config.conditions.iter() {
            if !voltages.iter().any(|&v| (v - cond.voltage()).abs() < 5e-4) {
                voltages.push(cond.voltage());
            }
        }
        let base_by_voltage: Vec<(f64, u64)> = tevot_par::map(&voltages, |&v| {
            let char_cond = OperatingCondition::new(v, 25.0);
            (v, characterizer.trace(char_cond, &fmax_suite).fastest_error_free_period_ps())
        });
        let base_at = |v: f64| -> u64 {
            base_by_voltage
                .iter()
                .find(|&&(bv, _)| (bv - v).abs() < 5e-4)
                .expect("every condition voltage was pre-measured")
                .1
        };
        let _span = tevot_obs::span!("characterize");
        let progress = tevot_obs::progress::Progress::new(
            format!("characterize {fu}"),
            config.conditions.len() as u64,
        );
        // One `tevot-par` task per condition; the ordered reduction keeps
        // `conditions` in grid order, identical to the old serial loop.
        let grid: Vec<OperatingCondition> = config.conditions.iter().collect();
        let conditions = tevot_par::map(&grid, |&cond| {
            tevot_obs::debug!("{fu} @ {cond}");
            let base = base_at(cond.voltage());
            // The per-condition Fmax measurement still exists offline — it
            // is what the Delay-based baseline calibrates against.
            let fmax_trace = characterizer.trace(cond, &fmax_suite);
            let train_trace = characterizer.trace(cond, &train);
            let periods: Vec<u64> =
                config.speedups.iter().map(|s| s.apply_to_period(base)).collect();
            let train_char = train_trace.characterization(&periods);
            let fmax_char = fmax_trace.characterization(&periods);
            let tests = [&test_random, &test_sobel, &test_gauss]
                .iter()
                .map(|w| characterizer.trace(cond, w).characterization(&periods))
                .collect();
            let study = ConditionStudy {
                condition: cond,
                base_period_ps: base,
                periods_ps: periods,
                train: train_char,
                fmax: fmax_char,
                tests,
            };
            progress.tick();
            study
        });
        progress.finish();
        FuStudy {
            fu,
            train_workload: train,
            test_workloads: vec![test_random, test_sobel, test_gauss],
            conditions,
        }
    }

    /// The study of one FU.
    ///
    /// # Panics
    ///
    /// Panics if the FU was not part of the study.
    pub fn fu(&self, fu: FunctionalUnit) -> &FuStudy {
        self.fus.iter().find(|s| s.fu == fu).expect("FU not studied")
    }
}
