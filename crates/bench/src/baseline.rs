//! Persisted benchmark baselines and the regression gate.
//!
//! `bench_track` distills a fixed suite of pipeline workloads into a
//! small set of named metrics (throughputs, wall times, model accuracy)
//! and writes them as a versioned `tevot-bench/1` JSON document —
//! conventionally `BENCH_<label>.json`, with the committed
//! `BENCH_baseline.json` at the repo root serving as the reference
//! point. `bench_compare` then loads a baseline and a candidate, runs
//! [`compare`], and exits nonzero when any tracked metric moved in its
//! bad direction by more than the configured relative threshold.
//!
//! Every metric carries its own `higher_is_better` direction, so
//! throughputs (higher is better) and wall times (lower is better)
//! share one gate without special cases. The threshold is relative:
//! with the default 10 %, a `cycles/s` drop from 1000 to 899 regresses
//! while 1000 → 901 is within noise.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use tevot_obs::json::{parse, Json};

use crate::table::TextTable;

/// Schema tag written to (and required of) every benchmark report.
pub const SCHEMA: &str = "tevot-bench/1";

/// Default relative regression threshold (10 %).
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// One tracked benchmark metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Dotted metric name, e.g. `int_add.sim_cycles_per_s`.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Display unit, e.g. `cycles/s` or `s`.
    pub unit: String,
    /// Direction of goodness: `true` for throughputs and accuracy,
    /// `false` for wall times.
    pub higher_is_better: bool,
}

/// A labelled set of benchmark metrics — one `BENCH_<label>.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// Human-readable run label (`baseline`, `ci`, a branch name...).
    pub label: String,
    /// Tracked metrics in suite order.
    pub metrics: Vec<Metric>,
    /// Per-span-path self time in milliseconds, captured from the
    /// run's span registry. Informational (not gated numerically): when
    /// a metric regresses, `bench_compare` diffs the two profiles to
    /// show *where* the time moved. Empty in reports written before the
    /// profiler existed — the member is additive.
    pub profile: Vec<(String, f64)>,
}

impl BenchReport {
    /// An empty report with the given label.
    pub fn new(label: impl Into<String>) -> BenchReport {
        BenchReport { label: label.into(), metrics: Vec::new(), profile: Vec::new() }
    }

    /// Appends one metric.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        value: f64,
        unit: &str,
        higher_is_better: bool,
    ) {
        self.metrics.push(Metric {
            name: name.into(),
            value,
            unit: unit.to_string(),
            higher_is_better,
        });
    }

    /// Looks a metric up by name.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// The report as a `tevot-bench/1` JSON document.
    pub fn to_json(&self) -> Json {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                Json::obj(vec![
                    ("name", Json::Str(m.name.clone())),
                    ("value", Json::Num(m.value)),
                    ("unit", Json::Str(m.unit.clone())),
                    ("higher_is_better", Json::Bool(m.higher_is_better)),
                ])
            })
            .collect();
        let mut members = vec![
            ("schema", Json::Str(SCHEMA.to_string())),
            ("label", Json::Str(self.label.clone())),
            ("metrics", Json::Arr(metrics)),
        ];
        if !self.profile.is_empty() {
            members.push(("profile", Json::Arr(self.profile_json())));
        }
        Json::obj(members)
    }

    fn profile_json(&self) -> Vec<Json> {
        self.profile
            .iter()
            .map(|(path, self_ms)| {
                Json::obj(vec![("path", Json::Str(path.clone())), ("self_ms", Json::Num(*self_ms))])
            })
            .collect()
    }

    /// Parses and validates a `tevot-bench/1` JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: invalid
    /// JSON, a wrong or missing `schema` tag, or a malformed metric.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let doc = parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(format!("unsupported schema {other:?} (want {SCHEMA:?})")),
            None => return Err(format!("missing \"schema\" tag (want {SCHEMA:?})")),
        }
        let label = doc.get("label").and_then(Json::as_str).unwrap_or("unlabelled").to_string();
        let mut report = BenchReport::new(label);
        let metrics = doc
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or("\"metrics\" missing or not an array")?;
        for (i, m) in metrics.iter().enumerate() {
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("metric {i}: missing \"name\""))?;
            let value = m
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("metric {name:?}: missing numeric \"value\""))?;
            let unit = m.get("unit").and_then(Json::as_str).unwrap_or("");
            let higher = match m.get("higher_is_better") {
                Some(Json::Bool(b)) => *b,
                _ => return Err(format!("metric {name:?}: missing \"higher_is_better\"")),
            };
            report.push(name, value, unit, higher);
        }
        if let Some(Json::Arr(entries)) = doc.get("profile") {
            for (i, entry) in entries.iter().enumerate() {
                let path = entry
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("profile entry {i}: missing \"path\""))?;
                let self_ms = entry
                    .get("self_ms")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("profile entry {path:?}: missing \"self_ms\""))?;
                report.profile.push((path.to_string(), self_ms));
            }
        }
        Ok(report)
    }

    /// Writes the report as pretty-enough JSON (one metric per line).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut text = String::new();
        let _ = writeln!(text, "{{");
        let _ = writeln!(text, "  \"schema\": {},", Json::Str(SCHEMA.to_string()));
        let _ = writeln!(text, "  \"label\": {},", Json::Str(self.label.clone()));
        let _ = writeln!(text, "  \"metrics\": [");
        for (i, m) in self.metrics.iter().enumerate() {
            let obj = Json::obj(vec![
                ("name", Json::Str(m.name.clone())),
                ("value", Json::Num(m.value)),
                ("unit", Json::Str(m.unit.clone())),
                ("higher_is_better", Json::Bool(m.higher_is_better)),
            ]);
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            let _ = writeln!(text, "    {obj}{comma}");
        }
        if self.profile.is_empty() {
            let _ = writeln!(text, "  ]");
        } else {
            let _ = writeln!(text, "  ],");
            let _ = writeln!(text, "  \"profile\": [");
            let entries = self.profile_json();
            for (i, entry) in entries.iter().enumerate() {
                let comma = if i + 1 < entries.len() { "," } else { "" };
                let _ = writeln!(text, "    {entry}{comma}");
            }
            let _ = writeln!(text, "  ]");
        }
        let _ = writeln!(text, "}}");
        std::fs::write(path, text)
    }

    /// Loads and parses a report file.
    ///
    /// # Errors
    ///
    /// Returns a message naming the path on I/O or parse failure.
    pub fn load(path: &Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read bench report {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Outcome of one metric's baseline/candidate comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Moved in the good direction by more than the threshold.
    Improved,
    /// Within the threshold either way.
    Unchanged,
    /// Moved in the bad direction by more than the threshold.
    Regressed,
    /// Present only in the candidate (informational).
    Added,
    /// Present only in the baseline — gates like a regression, since
    /// dropping a metric would otherwise hide one.
    Removed,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Unchanged => "ok",
            Verdict::Regressed => "REGRESSED",
            Verdict::Added => "added",
            Verdict::Removed => "REMOVED",
        }
    }
}

/// One metric's delta between two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Display unit (from whichever side has the metric).
    pub unit: String,
    /// Baseline value, if present there.
    pub baseline: Option<f64>,
    /// Candidate value, if present there.
    pub candidate: Option<f64>,
    /// Signed relative change `(candidate - baseline) / baseline`;
    /// `None` when either side is missing or the baseline is zero with
    /// a nonzero candidate (an infinite relative change).
    pub relative_change: Option<f64>,
    /// The gate's classification.
    pub verdict: Verdict,
}

/// A full comparison of two reports under one threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Baseline label.
    pub baseline_label: String,
    /// Candidate label.
    pub candidate_label: String,
    /// The relative threshold used.
    pub threshold: f64,
    /// Per-metric deltas, baseline order first, candidate-only last.
    pub deltas: Vec<MetricDelta>,
}

impl Comparison {
    /// The deltas that fail the gate ([`Verdict::Regressed`] and
    /// [`Verdict::Removed`]).
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| matches!(d.verdict, Verdict::Regressed | Verdict::Removed))
            .collect()
    }

    /// Whether the gate fails.
    pub fn has_regressions(&self) -> bool {
        !self.regressions().is_empty()
    }

    /// The deltas for metrics present in the baseline but absent from
    /// the candidate. A missing metric is structural breakage (a dropped
    /// or renamed benchmark stage), not measurement noise, so these fail
    /// the gate even in report-only mode — otherwise deleting a stage
    /// would silently retire its regression coverage.
    pub fn removed(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.verdict == Verdict::Removed).collect()
    }

    /// Renders the comparison as an aligned table plus a verdict line.
    pub fn render(&self) -> String {
        let mut table =
            TextTable::new(&["metric", "unit", "baseline", "candidate", "change", "verdict"]);
        for d in &self.deltas {
            table.row_owned(vec![
                d.name.clone(),
                d.unit.clone(),
                d.baseline.map_or_else(|| "-".to_string(), fmt_value),
                d.candidate.map_or_else(|| "-".to_string(), fmt_value),
                d.relative_change
                    .map_or_else(|| "-".to_string(), |r| format!("{:+.1}%", r * 100.0)),
                d.verdict.label().to_string(),
            ]);
        }
        let mut out = format!(
            "bench-compare: {} -> {} (threshold \u{b1}{:.1}%)\n{}",
            self.baseline_label,
            self.candidate_label,
            self.threshold * 100.0,
            table.render()
        );
        let bad = self.regressions().len();
        if bad == 0 {
            let _ = write!(out, "\nno regressions beyond the threshold");
        } else {
            let _ = write!(out, "\n{bad} metric(s) regressed beyond the threshold");
        }
        out
    }
}

/// Compares `candidate` against `baseline` with a relative `threshold`.
///
/// A shared metric regresses when its relative move in the bad direction
/// exceeds the threshold (the direction comes from the baseline's
/// `higher_is_better`). A zero baseline compares exactly: any nonzero
/// candidate counts as an unbounded move in the candidate's direction.
pub fn compare(baseline: &BenchReport, candidate: &BenchReport, threshold: f64) -> Comparison {
    assert!(threshold >= 0.0, "threshold must be non-negative");
    let mut deltas = Vec::new();
    for base in &baseline.metrics {
        let delta = match candidate.metric(&base.name) {
            None => MetricDelta {
                name: base.name.clone(),
                unit: base.unit.clone(),
                baseline: Some(base.value),
                candidate: None,
                relative_change: None,
                verdict: Verdict::Removed,
            },
            Some(cand) => {
                let (relative_change, verdict) =
                    classify(base.value, cand.value, base.higher_is_better, threshold);
                MetricDelta {
                    name: base.name.clone(),
                    unit: base.unit.clone(),
                    baseline: Some(base.value),
                    candidate: Some(cand.value),
                    relative_change,
                    verdict,
                }
            }
        };
        deltas.push(delta);
    }
    for cand in &candidate.metrics {
        if baseline.metric(&cand.name).is_none() {
            deltas.push(MetricDelta {
                name: cand.name.clone(),
                unit: cand.unit.clone(),
                baseline: None,
                candidate: Some(cand.value),
                relative_change: None,
                verdict: Verdict::Added,
            });
        }
    }
    Comparison {
        baseline_label: baseline.label.clone(),
        candidate_label: candidate.label.clone(),
        threshold,
        deltas,
    }
}

/// Classifies one shared metric: returns the signed relative change (when
/// finite) and the verdict under `threshold`.
fn classify(
    base: f64,
    cand: f64,
    higher_is_better: bool,
    threshold: f64,
) -> (Option<f64>, Verdict) {
    if base == 0.0 {
        if cand == 0.0 {
            return (Some(0.0), Verdict::Unchanged);
        }
        // Unbounded relative move: direction decides, threshold cannot.
        let improving = (cand > 0.0) == higher_is_better;
        return (None, if improving { Verdict::Improved } else { Verdict::Regressed });
    }
    let rel = (cand - base) / base;
    // `improvement` is positive when the metric got better.
    let improvement = if higher_is_better { rel } else { -rel };
    let verdict = if improvement < -threshold {
        Verdict::Regressed
    } else if improvement > threshold {
        Verdict::Improved
    } else {
        Verdict::Unchanged
    };
    (Some(rel), verdict)
}

/// Formats a metric value with magnitude-appropriate precision.
fn fmt_value(v: f64) -> String {
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_reports() -> (BenchReport, BenchReport) {
        let mut base = BenchReport::new("baseline");
        base.push("int_add.sim_cycles_per_s", 1000.0, "cycles/s", true);
        base.push("train.wall_s", 4.0, "s", false);
        base.push("int_add.accuracy_mean", 0.95, "frac", true);
        let mut cand = BenchReport::new("candidate");
        cand.push("int_add.sim_cycles_per_s", 1050.0, "cycles/s", true);
        cand.push("train.wall_s", 3.0, "s", false);
        cand.push("int_add.accuracy_mean", 0.94, "frac", true);
        (base, cand)
    }

    #[test]
    fn within_threshold_passes() {
        let (base, cand) = two_reports();
        let cmp = compare(&base, &cand, DEFAULT_THRESHOLD);
        assert!(!cmp.has_regressions(), "{}", cmp.render());
        // -25% wall time is an improvement for a lower-is-better metric.
        let wall = cmp.deltas.iter().find(|d| d.name == "train.wall_s").unwrap();
        assert_eq!(wall.verdict, Verdict::Improved);
        assert!((wall.relative_change.unwrap() + 0.25).abs() < 1e-12);
    }

    #[test]
    fn direction_aware_regressions() {
        let (base, mut cand) = two_reports();
        // Throughput down 30%: regression.
        cand.metrics[0].value = 700.0;
        // Wall time up 50%: regression despite being a larger number.
        cand.metrics[1].value = 6.0;
        let cmp = compare(&base, &cand, DEFAULT_THRESHOLD);
        let names: Vec<&str> = cmp.regressions().iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["int_add.sim_cycles_per_s", "train.wall_s"]);
    }

    #[test]
    fn removed_metric_gates_and_added_does_not() {
        let (base, mut cand) = two_reports();
        cand.metrics.remove(2);
        cand.push("fp_mul.sim_cycles_per_s", 50.0, "cycles/s", true);
        let cmp = compare(&base, &cand, DEFAULT_THRESHOLD);
        assert!(cmp.has_regressions());
        assert_eq!(cmp.regressions()[0].verdict, Verdict::Removed);
        let added = cmp.deltas.last().unwrap();
        assert_eq!(added.verdict, Verdict::Added);
        assert!(!matches!(added.verdict, Verdict::Regressed | Verdict::Removed));
        // removed() is the report-only escape hatch's input: it must list
        // exactly the missing baseline metrics, not Regressed/Added ones.
        let removed: Vec<&str> = cmp.removed().iter().map(|d| d.name.as_str()).collect();
        assert_eq!(removed, ["int_add.accuracy_mean"]);
        // An ordinary regression is NOT in removed() — report-only mode
        // still forgives it.
        let (base, mut slow) = two_reports();
        slow.metrics[0].value = 100.0;
        let cmp = compare(&base, &slow, DEFAULT_THRESHOLD);
        assert!(cmp.has_regressions());
        assert!(cmp.removed().is_empty());
    }

    #[test]
    fn zero_baseline_is_exact() {
        let mut base = BenchReport::new("b");
        base.push("errors", 0.0, "count", false);
        let mut same = BenchReport::new("c");
        same.push("errors", 0.0, "count", false);
        assert!(!compare(&base, &same, 0.1).has_regressions());
        let mut worse = BenchReport::new("c");
        worse.push("errors", 1.0, "count", false);
        let cmp = compare(&base, &worse, 0.1);
        assert_eq!(cmp.deltas[0].verdict, Verdict::Regressed);
        assert_eq!(cmp.deltas[0].relative_change, None);
    }

    #[test]
    fn json_round_trip() {
        let (base, _) = two_reports();
        let text = base.to_json().to_string();
        let back = BenchReport::parse(&text).unwrap();
        assert_eq!(back, base);
    }

    #[test]
    fn profile_member_round_trips_and_stays_additive() {
        let (mut base, _) = two_reports();
        base.profile.push(("train/characterize/dta/sim".into(), 123.5));
        base.profile.push(("train/fit".into(), 4.25));
        let back = BenchReport::parse(&base.to_json().to_string()).unwrap();
        assert_eq!(back, base);

        // `save` and `to_json` agree on the document.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tevot-bench-profile-{}.json", std::process::id()));
        base.save(&path).unwrap();
        let saved = BenchReport::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(saved, base);

        // Old documents without the member still parse, with no profile.
        let (plain, _) = two_reports();
        let old = BenchReport::parse(&plain.to_json().to_string()).unwrap();
        assert!(old.profile.is_empty());
    }

    #[test]
    fn parse_rejects_bad_documents() {
        assert!(BenchReport::parse("not json").unwrap_err().contains("invalid JSON"));
        assert!(BenchReport::parse(r#"{"metrics":[]}"#).unwrap_err().contains("schema"));
        assert!(BenchReport::parse(r#"{"schema":"tevot-bench/9","metrics":[]}"#)
            .unwrap_err()
            .contains("unsupported schema"));
        assert!(BenchReport::parse(r#"{"schema":"tevot-bench/1"}"#)
            .unwrap_err()
            .contains("metrics"));
        let missing_dir = r#"{"schema":"tevot-bench/1","label":"x",
            "metrics":[{"name":"a","value":1.0,"unit":"s"}]}"#;
        assert!(BenchReport::parse(missing_dir).unwrap_err().contains("higher_is_better"));
    }
}
