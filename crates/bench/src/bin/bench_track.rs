//! Runs the fixed benchmark suite and writes a versioned
//! `tevot-bench/1` report for `bench_compare` to gate against.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tevot-bench --bin bench_track -- \
//!     [--tiny] [--label NAME] [--out PATH] [--seed N] [--jobs N] \
//!     [--metrics m.json] [--trace t.json] [--profile-folded p.txt] [-v|-q]
//! ```
//!
//! `--jobs N` (or `TEVOT_JOBS`) sizes the `tevot-par` worker pool; the
//! `par.*` suite metrics record the sweep throughput and its speedup over
//! a forced single-worker run. Reported numbers are bit-identical at
//! every jobs level.
//!
//! The output defaults to `BENCH_<label>.json` in the working directory;
//! `--tiny` shrinks the workloads without changing the tracked metric
//! names, so a tiny candidate still compares cleanly against the
//! committed standard baseline (expect throughput noise, which is why CI
//! runs the gate in report-only mode). See EXPERIMENTS.md for the
//! baseline-refresh procedure.

use std::path::PathBuf;

use tevot_bench::config::StudyConfig;
use tevot_bench::suite::{run_suite, SuiteScale};

fn value_after(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let config = StudyConfig::from_env();
    let _obs = config.observability();
    let args: Vec<String> = std::env::args().skip(1).collect();

    let label = value_after(&args, "--label").unwrap_or_else(|| "local".to_string());
    let out = value_after(&args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("BENCH_{label}.json")));
    let mut scale = if args.iter().any(|a| a == "--tiny") {
        SuiteScale::tiny()
    } else {
        SuiteScale::standard()
    };
    scale.seed = config.seed;

    // Statistical profile of the whole suite run, written on exit.
    let _prof = value_after(&args, "--profile-folded")
        .map(|path| tevot_prof::FoldedGuard::start(PathBuf::from(path)));

    let report = run_suite(&label, &scale);
    if let Err(e) = report.save(&out) {
        eprintln!("bench_track: cannot write {}: {e}", out.display());
        std::process::exit(2);
    }
    println!("wrote {} ({} metrics, label {label:?})", out.display(), report.metrics.len());
}
