//! Reproduces **Fig. 3**: average dynamic delay per operating condition
//! for the three datasets and four FUs — the delay-variation
//! characterization that motivates workload-aware modeling.
//!
//! The paper plots 9 (V, T) pairs; the default (quick) configuration uses
//! exactly that grid. Expected shape: delay falls as voltage rises;
//! temperature *reduces* delay at 0.81 V (inverse temperature dependence)
//! but increases it at 0.90–1.00 V; and `random_data` sits well above the
//! application datasets, most prominently for INT ADD.
//!
//! Usage: `cargo run --release -p tevot-bench --bin fig3_delay_variations
//! [--full]`

use tevot_bench::config::StudyConfig;
use tevot_bench::study::{dataset_index, DatasetKind, Study};
use tevot_bench::table::TextTable;

fn main() {
    let config = StudyConfig::from_env();
    let _obs = config.observability();
    println!(
        "Fig. 3 reproduction: average dynamic delay (ps) across {} conditions",
        config.conditions.len()
    );
    let study = Study::run(config);

    for fu_study in &study.fus {
        println!("\n{} (cf. paper Fig. 3)", fu_study.fu);
        let mut table = TextTable::new(&["(V, T)", "random_data", "sobel_data", "gauss_data"]);
        for cond_study in &fu_study.conditions {
            let mut row = vec![cond_study.condition.to_string()];
            for dataset in DatasetKind::ALL {
                let avg = cond_study.tests[dataset_index(dataset)].average_delay_ps();
                row.push(format!("{avg:.0}"));
            }
            table.row_owned(row);
        }
        println!("{}", table.render());

        // Summarize the two headline effects.
        let delays: Vec<f64> = fu_study
            .conditions
            .iter()
            .map(|c| c.tests[dataset_index(DatasetKind::Random)].average_delay_ps())
            .collect();
        let conds: Vec<_> = fu_study.conditions.iter().map(|c| c.condition).collect();
        let at = |v: f64, t: f64| -> Option<f64> {
            conds
                .iter()
                .position(|c| (c.voltage() - v).abs() < 1e-6 && (c.temperature() - t).abs() < 1e-6)
                .map(|i| delays[i])
        };
        if let (Some(low_cold), Some(low_hot), Some(high_cold), Some(high_hot)) =
            (at(0.81, 0.0), at(0.81, 100.0), at(1.00, 0.0), at(1.00, 100.0))
        {
            println!(
                "  inverse temperature dependence @0.81V: {:.0} ps (0C) -> {:.0} ps (100C) [{}]",
                low_cold,
                low_hot,
                if low_hot < low_cold { "delay falls, ITD ok" } else { "UNEXPECTED" }
            );
            println!(
                "  normal dependence @1.00V: {:.0} ps (0C) -> {:.0} ps (100C) [{}]",
                high_cold,
                high_hot,
                if high_hot > high_cold { "delay rises, ok" } else { "UNEXPECTED" }
            );
        }
        let random_mean = mean(&delays);
        let app_mean = mean(
            &fu_study
                .conditions
                .iter()
                .flat_map(|c| {
                    [
                        c.tests[dataset_index(DatasetKind::Sobel)].average_delay_ps(),
                        c.tests[dataset_index(DatasetKind::Gauss)].average_delay_ps(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        println!(
            "  random vs application mean delay: {:.0} ps vs {:.0} ps ({:+.0}%)",
            random_mean,
            app_mean,
            (random_mean / app_mean - 1.0) * 100.0
        );
    }
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}
