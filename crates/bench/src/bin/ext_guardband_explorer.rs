//! **Extension** (paper Sec. V-E "Usage"): early design-space exploration.
//!
//! "TEVoT can help circuit designers perform early design space
//! exploration" — this binary does exactly that: for each operating
//! condition it uses a trained TEVoT to find the fastest clock whose
//! predicted timing error rate stays under a target, *without running
//! gate-level simulation*, then validates the recommendation against
//! simulation. The result is a model-driven adaptive-guardband table (cf.
//! the paper's Sec. II framing: "model the timing errors in advance and
//! then adaptively change the clock speed to improve efficiency").
//!
//! Usage: `cargo run --release -p tevot-bench --bin ext_guardband_explorer`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot::dta::Characterizer;
use tevot::workload::random_workload;
use tevot::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
use tevot_bench::config::StudyConfig;
use tevot_bench::table::{pct, TextTable};
use tevot_netlist::fu::FunctionalUnit;
use tevot_timing::{ClockSpeedup, ConditionGrid, OperatingCondition};

/// Fastest clock (ps) whose model-predicted TER stays below `target`:
/// the `1 - target` quantile of the predicted per-cycle delays, inflated
/// by `margin_ps` (the conformal calibration term).
fn explore(
    model: &TevotModel,
    cond: OperatingCondition,
    ops: &[(u32, u32)],
    target_ter: f64,
    margin_ps: f64,
) -> u64 {
    let mut delays: Vec<f64> =
        (1..ops.len()).map(|t| model.predict_delay_ps(cond, ops[t], ops[t - 1])).collect();
    delays.sort_by(f64::total_cmp);
    let idx = ((delays.len() as f64) * (1.0 - target_ter)).ceil() as usize;
    (delays[idx.min(delays.len() - 1)] + margin_ps).ceil() as u64
}

/// Conformal calibration: the maximum of the model's *residuals* (actual
/// minus predicted delay) on a held-out calibration characterization —
/// characterization-time data, so no runtime simulation is spent. A
/// forest regresses to the mean and under-predicts the delay tail, and
/// its in-sample residuals understate the effect; a held-out set measures
/// it honestly.
fn calibration_margin_ps(
    model: &TevotModel,
    cond: OperatingCondition,
    ops: &[(u32, u32)],
    actual: &[u64],
) -> f64 {
    (1..ops.len())
        .map(|t| actual[t] as f64 - model.predict_delay_ps(cond, ops[t], ops[t - 1]))
        .fold(0.0f64, f64::max)
}

fn main() {
    let config = StudyConfig::from_env();
    let _obs = config.observability();
    let fu = FunctionalUnit::FpAdd;
    let target_ter = 0.01;
    let characterizer = Characterizer::new(fu);
    let grid = ConditionGrid::fig3();

    // Train one model across a training sweep.
    tevot_obs::info!("characterizing {fu} across {} conditions...", grid.len());
    let train = random_workload(fu, 900, config.seed);
    let chars: Vec<_> =
        grid.iter().map(|c| characterizer.characterize(c, &train, &ClockSpeedup::PAPER)).collect();
    let runs: Vec<_> = chars.iter().map(|c| (&train, c)).collect();
    let data = build_delay_dataset(FeatureEncoding::with_history(), &runs);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let model = TevotModel::train(&data, &TevotParams::default(), &mut rng);

    println!(
        "Adaptive guardband table for {fu}, target TER {} (validated against \
         gate-level simulation):\n",
        pct(target_ter)
    );
    let mut table = TextTable::new(&[
        "condition",
        "static period",
        "TEVoT period",
        "margin saved",
        "actual TER",
        "within target",
    ]);
    // Held-out calibration set, characterized once per condition at
    // characterization time.
    tevot_obs::info!("characterizing the calibration set...");
    let cal = random_workload(fu, 300, config.seed + 7);
    let cal_chars: Vec<_> =
        grid.iter().map(|c| characterizer.characterize(c, &cal, &ClockSpeedup::PAPER)).collect();

    let probe = random_workload(fu, 400, config.seed + 3);
    let mut hits = 0;
    let mut savings = Vec::new();
    for (i, cond) in grid.iter().enumerate() {
        let margin = calibration_margin_ps(&model, cond, cal.operands(), cal_chars[i].delays_ps());
        let recommended = explore(&model, cond, probe.operands(), target_ter, margin);
        let static_period = chars[i].critical_delay_ps();
        let truth = characterizer.characterize_with_periods(cond, &probe, &[recommended]);
        let actual = truth.timing_error_rate(0);
        // Allow the sampling slack of a 400-vector validation run.
        let ok = actual <= target_ter * 2.0 + 1.0 / probe.len() as f64;
        hits += ok as usize;
        let saved = 1.0 - recommended as f64 / static_period as f64;
        savings.push(saved);
        table.row_owned(vec![
            cond.to_string(),
            format!("{static_period} ps"),
            format!("{recommended} ps"),
            pct(saved),
            pct(actual),
            if ok { "yes".into() } else { "NO".into() },
        ]);
    }
    println!("{}", table.render());
    let mean_saving = savings.iter().sum::<f64>() / savings.len() as f64;
    println!(
        "mean clock-period reduction vs the static (STA) guardband: {} — \
         recommendations met the target at {}/{} conditions, with zero \
         gate-level simulation in the loop.",
        pct(mean_saving),
        hits,
        grid.len()
    );
}
