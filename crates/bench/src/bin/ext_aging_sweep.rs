//! **Extension** (paper Sec. III & conclusion future work): process and
//! aging variations.
//!
//! Sweeps process corners and BTI ages for one FU and reports (a) how the
//! static guardband erodes, (b) how the timing error rate at a clock set
//! for *fresh typical* silicon grows as the die ages, and (c) how a
//! TEVoT model trained on fresh silicon compares with one retrained on
//! the aged die's own characterization — i.e. the paper's methodology
//! extends to these variation sources exactly as Sec. III claims.
//!
//! Usage: `cargo run --release -p tevot-bench --bin ext_aging_sweep`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot::dta::Characterizer;
use tevot::workload::random_workload;
use tevot::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
use tevot_bench::config::StudyConfig;
use tevot_bench::table::{pct, TextTable};
use tevot_netlist::fu::FunctionalUnit;
use tevot_sim::{CycleResult, TimingSimulator};
use tevot_timing::{sta, DelayModel, OperatingCondition, ProcessCorner, SiliconProfile};

fn main() {
    let config = StudyConfig::from_env();
    let _obs = config.observability();
    let fu = FunctionalUnit::IntAdd;
    let cond = OperatingCondition::new(0.81, 25.0);
    let model = DelayModel::tsmc45_like();
    let netlist = fu.build();
    let work = random_workload(fu, 800, config.seed);

    // The clock is set once, from fresh typical silicon, with a slim
    // static margin — then the die ages underneath it.
    let fresh = SiliconProfile::fresh();
    let fresh_ann = model.annotate_for_die(&netlist, cond, &fresh);
    // Fmax as deployed: the fastest error-free period of the *production
    // workload* on fresh typical silicon (base and measurement must share
    // a workload for the margin story to be visible).
    let base = {
        let mut sim = TimingSimulator::new(&netlist, &fresh_ann);
        work.operands()
            .iter()
            .map(|&(a, b)| sim.step(&fu.encode_operands(a, b)).dynamic_delay_ps())
            .skip(1)
            .max()
            .expect("non-empty workload")
    };
    let clock = base * 51 / 50; // 2% static margin over measured Fmax
    println!(
        "{fu} at {cond}: clock fixed at {clock} ps (2% margin over fresh-TT Fmax {base} ps)\n"
    );

    let mut table = TextTable::new(&["corner", "age (yrs)", "critical (ps)", "TER @ fixed clock"]);
    for corner in ProcessCorner::ALL {
        for years in [0.0, 3.0, 10.0] {
            let die = SiliconProfile::at_corner(corner, 42).aged(years);
            let ann = model.annotate_for_die(&netlist, cond, &die);
            let crit = sta::run(&netlist, &ann).critical_delay_ps();
            let mut sim = TimingSimulator::new(&netlist, &ann);
            let cycles: Vec<CycleResult> =
                work.operands().iter().map(|&(a, b)| sim.step(&fu.encode_operands(a, b))).collect();
            let ter = cycles[1..].iter().filter(|c| c.is_erroneous_at(clock)).count() as f64
                / (cycles.len() - 1) as f64;
            table.row_owned(vec![
                corner.to_string(),
                format!("{years:.0}"),
                crit.to_string(),
                pct(ter),
            ]);
        }
    }
    println!("{}", table.render());

    // Model transfer: fresh-trained TEVoT vs aged ground truth.
    println!("TEVoT transfer onto a 10-year-old slow die:");
    let aged_die = SiliconProfile::at_corner(ProcessCorner::SlowSlow, 42).aged(10.0);
    let aged_ann = model.annotate_for_die(&netlist, cond, &aged_die);
    let eval = |tevot: &TevotModel| -> f64 {
        let mut sim = TimingSimulator::new(&netlist, &aged_ann);
        let ops = work.operands();
        let mut matched = 0;
        let mut cycles = Vec::with_capacity(ops.len());
        for &(a, b) in ops {
            cycles.push(sim.step(&fu.encode_operands(a, b)));
        }
        for t in 1..ops.len() {
            let predicted = tevot.predict_error(cond, clock, ops[t], ops[t - 1]);
            if predicted == cycles[t].is_erroneous_at(clock) {
                matched += 1;
            }
        }
        matched as f64 / (ops.len() - 1) as f64
    };

    let characterizer = Characterizer::new(fu);
    let train = random_workload(fu, 1000, config.seed + 1);
    let fresh_truth = characterizer.characterize_with_periods(cond, &train, &[clock]);
    let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&train, &fresh_truth)]);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let fresh_model = TevotModel::train(&data, &TevotParams::default(), &mut rng);
    let fresh_acc = eval(&fresh_model);

    // Retrain on the aged die's own characterization.
    let aged_truth = {
        let mut sim = TimingSimulator::new(&netlist, &aged_ann);
        let ops = train.operands();
        let mut delays = Vec::with_capacity(ops.len());
        for &(a, b) in ops {
            delays.push(sim.step(&fu.encode_operands(a, b)).dynamic_delay_ps());
        }
        delays
    };
    let mut aged_data = tevot_ml::Dataset::new(130);
    let enc = FeatureEncoding::with_history();
    let mut row = Vec::new();
    let ops = train.operands();
    for t in 1..ops.len() {
        enc.encode_into(cond, ops[t], ops[t - 1], &mut row);
        aged_data.push(&row, aged_truth[t] as f64);
    }
    let aged_model = TevotModel::train(&aged_data, &TevotParams::default(), &mut rng);
    let aged_acc = eval(&aged_model);

    println!("  trained on fresh silicon:   {}", pct(fresh_acc));
    println!("  retrained on aged silicon:  {}", pct(aged_acc));
    println!(
        "\nAging raises Vth, so it bites hardest at low voltage (same physics as \
         the paper's ITD): the table shows the static margin eroding and the TER \
         climbing with corner and age. At these still-small error rates a \
         fresh-silicon TEVoT remains accurate; re-characterizing on the aged die \
         is the drop-in path once the erosion grows — the paper's methodology \
         carries over to process/aging variation unchanged."
    );
}
