//! The benchmark regression gate: compares a candidate `tevot-bench/1`
//! report against a baseline and fails on regressions.
//!
//! Usage:
//!
//! ```text
//! bench_compare <baseline.json> <candidate.json> \
//!     [--threshold 0.10] [--report-only]
//! ```
//!
//! Exit status: 0 when every tracked metric is within the threshold
//! (or `--report-only` was passed), 1 when at least one metric
//! regressed, 2 on usage or load errors. CI runs this in report-only
//! mode — shared runners make wall-clock throughputs too noisy for a
//! hard gate — so the rendered table is the artifact that matters.
//! One exception survives report-only: a metric present in the baseline
//! but missing from the candidate always fails, because a dropped or
//! renamed benchmark stage would otherwise silently lose its coverage.

use std::process::ExitCode;

use tevot_bench::baseline::{compare, BenchReport, DEFAULT_THRESHOLD};

const USAGE: &str = "usage: bench_compare <baseline.json> <candidate.json> \
                     [--threshold 0.10] [--report-only]";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("bench_compare: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut baseline_path = None;
    let mut candidate_path = None;
    let mut threshold = DEFAULT_THRESHOLD;
    let mut report_only = false;

    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => match iter.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => threshold = t,
                _ => return usage_error("--threshold needs a non-negative number"),
            },
            "--report-only" => report_only = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with("--") => return usage_error(&format!("unknown flag {arg}")),
            _ if baseline_path.is_none() => baseline_path = Some(arg),
            _ if candidate_path.is_none() => candidate_path = Some(arg),
            _ => return usage_error(&format!("unexpected argument {arg:?}")),
        }
    }
    let (Some(baseline_path), Some(candidate_path)) = (baseline_path, candidate_path) else {
        return usage_error("need a baseline and a candidate report");
    };

    let baseline = match BenchReport::load(baseline_path.as_ref()) {
        Ok(r) => r,
        Err(e) => return usage_error(&e),
    };
    let candidate = match BenchReport::load(candidate_path.as_ref()) {
        Ok(r) => r,
        Err(e) => return usage_error(&e),
    };

    let comparison = compare(&baseline, &candidate, threshold);
    println!("{}", comparison.render());
    if comparison.has_regressions() {
        // Point at the hot paths: when the gate trips and both reports
        // carry a profile, show where self time moved (top 10 by
        // magnitude) so the regression comes with a lead, not just a
        // number.
        if !baseline.profile.is_empty() && !candidate.profile.is_empty() {
            print!(
                "{}",
                tevot_obs::diff::render_self_time_delta(
                    "self time (ms), top 10 by |delta|",
                    &baseline.profile,
                    &candidate.profile,
                    10,
                )
            );
        }
        if report_only {
            // Throughput noise is forgiven in report-only mode, but a
            // baseline metric that vanished from the candidate is
            // structural breakage — failing here is the whole point of
            // the gate, or deleting a stage would retire its coverage.
            let removed = comparison.removed();
            if removed.is_empty() {
                println!("(report-only mode: not failing the build)");
                return ExitCode::SUCCESS;
            }
            for d in &removed {
                eprintln!(
                    "bench_compare: baseline metric {:?} is missing from the candidate",
                    d.name
                );
            }
            eprintln!("bench_compare: missing metrics fail even in report-only mode");
        }
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
