//! Reproduces **Fig. 1**: the same circuit exhibits different dynamic
//! delays under different input transitions, because the sensitized
//! longest path — not the static critical path — determines when the
//! outputs settle.
//!
//! The paper's example: an inverter (1 ns) feeding an AND gate (1 ns) on
//! one input, with the other input arriving through a 0.5 ns buffer.
//! When only `y` toggles, the output settles after 1.5 ns; when `x`
//! toggles, the inverter is on the sensitized path and the output settles
//! after 2 ns.
//!
//! Usage: `cargo run -p tevot-bench --bin fig1_dynamic_delay`

use tevot_bench::config::StudyConfig;
use tevot_netlist::NetlistBuilder;
use tevot_sim::TimingSimulator;
use tevot_timing::{DelayAnnotation, OperatingCondition};

fn main() {
    let config = StudyConfig::from_env();
    let _obs = config.observability();
    let mut b = NetlistBuilder::new("fig1");
    let x = b.input("x");
    let y = b.input("y");
    let inv = b.not(x);
    let byp = b.buf(y);
    let out = b.and(inv, byp);
    b.output("o", out);
    let nl = b.finish();

    let mut delays = vec![0u32; nl.num_nets()];
    delays[inv.index()] = 1000;
    delays[byp.index()] = 500;
    delays[out.index()] = 1000;
    let ann = DelayAnnotation::new("fig1", OperatingCondition::nominal(), delays);

    println!("Fig. 1 reproduction: dynamic delay depends on which input toggles\n");
    println!("circuit: x -> INV(1ns) -> AND(1ns) <- BUF(0.5ns) <- y\n");

    let mut sim = TimingSimulator::new(&nl, &ann);
    println!("(a) initial state: x=0, y=0, output settled at 0");

    let c1 = sim.step(&[false, true]);
    println!(
        "(b) first input change (y: 0->1): output -> {} after {} ps (paper: 1.5 ns)",
        c1.settled_outputs()[0] as u8,
        c1.dynamic_delay_ps()
    );

    let c2 = sim.step(&[true, true]);
    println!(
        "(c) second input change (x: 0->1): output -> {} after {} ps (paper: 2 ns)",
        c2.settled_outputs()[0] as u8,
        c2.dynamic_delay_ps()
    );

    assert_eq!(c1.dynamic_delay_ps(), 1500);
    assert_eq!(c2.dynamic_delay_ps(), 2000);
    println!("\nBoth delays match the paper's Fig. 1 example.");
}
