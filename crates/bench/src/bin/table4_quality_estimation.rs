//! Reproduces **Table IV**: application output-quality estimation accuracy
//! of the four error models for the Sobel and Gaussian filters.
//!
//! At every (condition, clock speedup) point, per-FU timing error rates
//! are derived from gate-level simulation (ground truth) and from each
//! model, injected into the application (an erroneous FU op returns a
//! random value), and every output image is classified acceptable
//! (PSNR >= 30 dB) or not; a model's estimation accuracy (Eq. 5) is the
//! fraction of verdicts matching simulation's.
//!
//! Usage: `cargo run --release -p tevot-bench --bin
//! table4_quality_estimation [--full] [--tiny]`

use tevot_bench::config::StudyConfig;
use tevot_bench::models::{quality_study, FuModels};
use tevot_bench::study::Study;
use tevot_bench::table::{pct, TextTable};
use tevot_imgproc::Application;

fn main() {
    let config = StudyConfig::from_env();
    let _obs = config.observability();
    println!(
        "Table IV reproduction: quality estimation over {} conditions x {} \
         speedups x {} images",
        config.conditions.len(),
        config.speedups.len(),
        config.corpus_images,
    );
    let num_trees = config.num_trees;
    let seed = config.seed;
    let study = Study::run(config);

    tevot_obs::info!("training models...");
    let mut models: Vec<FuModels> =
        study.fus.iter().map(|fu_study| FuModels::train(fu_study, num_trees, seed)).collect();

    let mut table =
        TextTable::new(&["Application", "TEVoT", "Delay-based", "TER-based", "TEVoT-NH"]);
    for app in Application::ALL {
        tevot_obs::info!("injecting errors for {app}...");
        let (accuracies, sim_acceptance) =
            quality_study(&study, &mut models, app, &study.corpus, seed ^ 0xF164);
        let mut row = vec![app.name().to_string()];
        for (model, acc) in &accuracies {
            let _ = model;
            row.push(pct(*acc));
        }
        table.row_owned(row);
        println!("{app}: simulation judged {} of outputs acceptable", pct(sim_acceptance));
    }

    println!("\n{}", table.render());
    println!(
        "Paper (Table IV): Sobel — TEVoT 97.6%, Delay-based 75.7%, TER-based 53.8%, \
         TEVoT-NH 58.8%; Gauss — TEVoT 96.5%, Delay-based 84.1%, TER-based 64.6%, \
         TEVoT-NH 71.2%"
    );
}
