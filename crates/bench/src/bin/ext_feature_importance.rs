//! **Extension** (paper Sec. IV-B2): the interpretability argument made
//! concrete.
//!
//! The paper picks the random forest partly for "its superior
//! interpretability — it can interpret the significance disparity between
//! different features". This binary trains TEVoT on one FU across the
//! Fig. 3 grid and prints the learned feature importances: which operand
//! bits sensitize the long paths, how much the history input matters, and
//! where V and T rank.
//!
//! Usage: `cargo run --release -p tevot-bench --bin ext_feature_importance
//! [--fu int-add|int-mul|fp-add|fp-mul]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot::dta::Characterizer;
use tevot::workload::random_workload;
use tevot::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
use tevot_bench::config::StudyConfig;
use tevot_bench::table::{pct, TextTable};
use tevot_netlist::fu::FunctionalUnit;
use tevot_timing::{ClockSpeedup, ConditionGrid};

fn main() {
    let config = StudyConfig::from_env();
    let _obs = config.observability();
    let fu = match std::env::args().skip_while(|a| a != "--fu").nth(1).as_deref() {
        Some("int-mul") => FunctionalUnit::IntMul,
        Some("fp-add") => FunctionalUnit::FpAdd,
        Some("fp-mul") => FunctionalUnit::FpMul,
        _ => FunctionalUnit::IntAdd,
    };
    let characterizer = Characterizer::new(fu);
    let work = random_workload(fu, 800, config.seed);
    let chars: Vec<_> = ConditionGrid::fig3()
        .iter()
        .map(|c| {
            tevot_obs::info!("characterizing {fu} at {c}...");
            characterizer.characterize(c, &work, &ClockSpeedup::PAPER)
        })
        .collect();
    let runs: Vec<_> = chars.iter().map(|c| (&work, c)).collect();
    let data = build_delay_dataset(FeatureEncoding::with_history(), &runs);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let model = TevotModel::train(&data, &TevotParams::default(), &mut rng);

    let mut importances = model.feature_importances();
    importances.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("\n{fu}: top-15 features by impurity-decrease importance");
    let mut table = TextTable::new(&["rank", "feature", "importance"]);
    for (rank, (name, value)) in importances.iter().take(15).enumerate() {
        table.row_owned(vec![(rank + 1).to_string(), name.clone(), pct(*value)]);
    }
    println!("{}", table.render());

    // At a single condition the (dominant) V/T scale features drop out
    // and the per-bit sensitization structure becomes visible.
    let single = &chars[4]; // (0.90V, 50C) in the fig3 grid
    let data_one = build_delay_dataset(FeatureEncoding::with_history(), &[(&work, single)]);
    let model_one = TevotModel::train(&data_one, &TevotParams::default(), &mut rng);
    let mut imp_one = model_one.feature_importances();
    imp_one.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "top-10 features at the single condition {} (scale features excluded by \
         construction):",
        single.condition()
    );
    let mut table = TextTable::new(&["rank", "feature", "importance"]);
    for (rank, (name, value)) in imp_one.iter().take(10).enumerate() {
        table.row_owned(vec![(rank + 1).to_string(), name.clone(), pct(*value)]);
    }
    println!("{}", table.render());

    let group = |prefix: &str| -> f64 {
        importances.iter().filter(|(n, _)| n.starts_with(prefix)).map(|(_, v)| v).sum()
    };
    println!("grouped importance shares (multi-condition model):");
    println!("  current input  x[t]:    {}", pct(group("a[t] ") + group("b[t] ")));
    println!("  history input  x[t-1]:  {}", pct(group("a[t-1]") + group("b[t-1]")));
    println!("  voltage V:              {}", pct(group("V")));
    println!("  temperature T:          {}", pct(group("T")));
    println!(
        "\nReading: the condition features carry the delay *scale*; the operand \
         bits (and, for transition-sensitive circuits, their history) carry the \
         sensitization. The significance disparity between bit positions is \
         exactly what the paper's Sec. IV-B2 argues the forest can expose."
    );
}
