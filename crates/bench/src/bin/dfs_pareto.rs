//! **Extension** (paper Sec. II / V-E): closed-loop adaptive clocking.
//!
//! The paper motivates TEVoT as the model that lets a system "model the
//! timing errors in advance and then adaptively change the clock speed to
//! improve efficiency". This binary closes that loop: a
//! [`tevot_dfs::ClockController`] wraps the trained model and picks a
//! per-cycle clock period (predicted dynamic delay + guardband), and the
//! gate-level simulator replays application operand traces (Sobel and
//! Gaussian, the paper's workloads) as the ground-truth error oracle.
//!
//! For each (V, T) corner — including the ITD-inverted 0.81 V points —
//! the binary sweeps guardband policies (fixed margins, calibration
//! quantiles, a PI feedback loop) and prints a throughput-vs-error-rate
//! Pareto table against three fixed-clock baselines:
//!
//! * `sta-worst-case` — the corner's static critical delay (TerBased/STA
//!   style worst-case guardband, zero errors by construction);
//! * `delay-based`    — the maximum *observed* dynamic delay on the
//!   calibration trace (the DelayBased baseline's period);
//! * `oracle-fixed`   — the safest fixed clock in hindsight: the maximum
//!   dynamic delay of the evaluation trace itself.
//!
//! `--check` exits non-zero unless, at one or more corners, some adaptive
//! policy *dominates* a fixed-clock baseline — strictly higher throughput
//! at an equal-or-lower observed error rate (used by the CI `dfs-smoke`
//! job).
//!
//! Usage: `cargo run --release -p tevot-bench --bin dfs_pareto [--tiny]
//! [--check]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot::dta::Characterizer;
use tevot::workload::{random_workload, Workload};
use tevot::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
use tevot_bench::config::StudyConfig;
use tevot_bench::table::{pct, TextTable};
use tevot_dfs::{
    calibration_residuals_ps, fixed_clock_outcome, quantile_margin_ps, replay, ClockController,
    FeedbackConfig, GuardbandPolicy, ReplayOutcome,
};
use tevot_imgproc::profile::profile_application;
use tevot_imgproc::synth::synthetic_corpus;
use tevot_imgproc::Application;
use tevot_netlist::fu::FunctionalUnit;
use tevot_timing::{ClockSpeedup, ConditionGrid, OperatingCondition};

/// One evaluated clocking scheme at one corner.
struct Point {
    label: String,
    adaptive: bool,
    outcome: ReplayOutcome,
}

impl Point {
    fn throughput(&self) -> f64 {
        self.outcome.throughput_ops_per_us()
    }
}

/// True when some adaptive point strictly dominates some fixed-clock
/// baseline: higher throughput at an equal-or-lower observed error rate.
fn adaptive_dominates(points: &[Point]) -> bool {
    points.iter().filter(|p| p.adaptive).any(|a| {
        points.iter().filter(|b| !b.adaptive).any(|b| {
            a.throughput() > b.throughput() && a.outcome.error_rate() <= b.outcome.error_rate()
        })
    })
}

fn main() {
    let config = StudyConfig::from_env();
    let _obs = config.observability();
    let check = std::env::args().any(|a| a == "--check");
    let fu = FunctionalUnit::IntAdd;
    let characterizer = Characterizer::new(fu);

    // Training sweep: a 3x3 grid spanning the ITD-inverted low-voltage
    // region and the nominal point, characterized on a mixed
    // random + application workload (the paper's training recipe).
    let grid = ConditionGrid::new(vec![0.81, 0.9, 1.0], vec![0.0, 25.0, 100.0]);
    let corpus =
        synthetic_corpus(config.corpus_images.max(2), config.image_size, config.image_size, 11);
    let app_ops = config.train_app.min(300).max(100);
    let sobel = profile_application(Application::Sobel, &corpus, app_ops + config.test_len);
    let gauss = profile_application(Application::Gaussian, &corpus, app_ops + config.test_len);
    let train = random_workload(fu, config.train_random.min(700), config.seed)
        .concat(&sobel.workload(fu).truncated(app_ops), "train_mix")
        .concat(&gauss.workload(fu).truncated(app_ops), "train_mix");

    tevot_obs::info!(
        "characterizing {fu} ({} vectors) across {} conditions...",
        train.len(),
        grid.len()
    );
    let chars: Vec<_> =
        grid.iter().map(|c| characterizer.characterize(c, &train, &ClockSpeedup::PAPER)).collect();
    let runs: Vec<_> = chars.iter().map(|c| (&train, c)).collect();
    let data = build_delay_dataset(FeatureEncoding::with_history(), &runs);
    let mut params = TevotParams::default();
    params.forest.num_trees = config.num_trees.min(8);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let model = TevotModel::train(&data, &params, &mut rng);

    // Evaluation corners: nominal, hot low-voltage, and the cold 0.81 V
    // point where inverted temperature dependence bites hardest.
    let corners = [
        OperatingCondition::new(0.9, 25.0),
        OperatingCondition::new(0.81, 100.0),
        OperatingCondition::new(0.81, 0.0),
    ];
    let workloads: [(&str, &Workload); 2] =
        [("sobel", sobel.workload(fu)), ("gauss", gauss.workload(fu))];

    println!(
        "Adaptive-clocking Pareto study for {fu}: ClockController policies vs \
         fixed clocks, gate-level simulation as the error oracle.\n"
    );

    let mut dominated_corners = 0usize;
    for cond in corners {
        let sta_period = characterizer.critical_delay_ps(cond);
        let mut points: Vec<Point> = Vec::new();
        let mut cycles_total = 0usize;

        for (name, workload) in workloads {
            // One gate-level trace per corner per workload; the leading
            // slice calibrates margins, the suffix is the held-out
            // evaluation stream. `replay` skips the slice's first cycle,
            // so the split boundary costs nothing.
            let trace = characterizer.trace(cond, workload);
            let actual: Vec<u64> = trace.cycles().iter().map(|c| c.dynamic_delay_ps()).collect();
            let ops = workload.operands();
            let cal_len = (ops.len() / 3).max(2).min(ops.len() - 2);
            let (cal_ops, eval_ops) = ops.split_at(cal_len);
            let (cal_actual, eval_actual) = actual.split_at(cal_len);
            cycles_total += eval_ops.len() - 1;

            let mut residuals = calibration_residuals_ps(&model, cond, cal_ops, cal_actual);
            residuals.sort_by(f64::total_cmp);
            let max_residual = residuals.last().copied().unwrap_or(0.0).max(0.0);
            let q99 = quantile_margin_ps(&residuals, 0.99);

            let mut policies = vec![
                ("fixed q0.99-cal", GuardbandPolicy::fixed(q99)),
                ("fixed max-cal", GuardbandPolicy::fixed(max_residual)),
                ("fixed 1.5x max-cal", GuardbandPolicy::fixed(1.5 * max_residual)),
                ("fixed 2x max-cal", GuardbandPolicy::fixed(2.0 * max_residual)),
                ("quantile 0.90", GuardbandPolicy::quantile_of(0.90, &residuals)),
                ("quantile 0.95", GuardbandPolicy::quantile_of(0.95, &residuals)),
                ("quantile 0.97", GuardbandPolicy::quantile_of(0.97, &residuals)),
                ("quantile 1.00", GuardbandPolicy::quantile_of(1.0, &residuals)),
                (
                    "pi feedback",
                    GuardbandPolicy::Feedback(FeedbackConfig {
                        initial_margin_ps: max_residual,
                        max_margin_ps: (2.0 * max_residual).max(400.0),
                        ..FeedbackConfig::default()
                    }),
                ),
            ];
            // Fixed-clock baselines replayed over the same eval stream:
            // the STA and calibrated worst cases, plus the *best possible*
            // fixed clock at several error budgets — the period at each
            // quantile of the eval delay distribution itself (chosen in
            // hindsight, i.e. maximally favorable to the fixed clock).
            // An adaptive point above this frontier wins on per-cycle
            // tracking alone.
            let delay_based = cal_actual.iter().copied().max().unwrap_or(sta_period);
            let oracle_fixed = eval_actual.iter().copied().max().unwrap_or(sta_period);
            let mut sorted_eval: Vec<u64> = eval_actual[1..].to_vec();
            sorted_eval.sort_unstable();
            let frontier = |q: f64| -> u64 {
                sorted_eval[(((sorted_eval.len() - 1) as f64) * q).round() as usize]
            };
            for (label, period) in [
                ("sta-worst-case", sta_period),
                ("delay-based", delay_based),
                ("oracle-fixed", oracle_fixed),
                ("best-fixed p90", frontier(0.90)),
                ("best-fixed p95", frontier(0.95)),
                ("best-fixed p99", frontier(0.99)),
            ] {
                merge(
                    &mut points,
                    label.to_string(),
                    false,
                    fixed_clock_outcome(period, eval_actual),
                );
            }
            for (label, policy) in policies.drain(..) {
                let mut controller = ClockController::new(policy);
                let outcome = replay(&mut controller, &model, cond, eval_ops, eval_actual);
                merge(&mut points, label.to_string(), true, outcome);
            }
            tevot_obs::debug!(
                "{cond} {name}: cal {} cycles, eval {} cycles, max residual {max_residual:.0} ps",
                cal_ops.len(),
                eval_ops.len()
            );
        }

        let mut table = TextTable::new(&[
            "policy",
            "kind",
            "mean t_clk",
            "throughput",
            "errors",
            "error rate",
            "vs oracle-fixed",
        ]);
        points.sort_by(|a, b| b.throughput().total_cmp(&a.throughput()));
        let oracle_tp = points
            .iter()
            .find(|p| p.label == "oracle-fixed")
            .map(|p| p.throughput())
            .unwrap_or(f64::NAN);
        for p in &points {
            table.row_owned(vec![
                p.label.clone(),
                if p.adaptive { "adaptive".into() } else { "fixed".into() },
                format!("{:.0} ps", p.outcome.mean_t_clk_ps()),
                format!("{:.2} ops/us", p.throughput()),
                format!("{}/{}", p.outcome.errors, p.outcome.cycles),
                pct(p.outcome.error_rate()),
                format!("{:+.1}%", (p.throughput() / oracle_tp - 1.0) * 100.0),
            ]);
        }
        let dominates = adaptive_dominates(&points);
        dominated_corners += dominates as usize;
        println!(
            "== corner {cond} (STA critical delay {sta_period} ps, {cycles_total} eval cycles) ==\n{}\nadaptive dominates a fixed baseline: {}\n",
            table.render(),
            if dominates { "yes" } else { "NO" }
        );
    }

    println!(
        "adaptive clocking dominated a fixed-clock baseline at {dominated_corners}/{} corners",
        corners.len()
    );
    if check && dominated_corners == 0 {
        eprintln!("error: --check requires the adaptive controller to dominate at >=1 corner");
        std::process::exit(1);
    }
}

/// Accumulates per-workload outcomes under one label so each corner's
/// table has one row per scheme across both application streams.
fn merge(points: &mut Vec<Point>, label: String, adaptive: bool, outcome: ReplayOutcome) {
    if let Some(p) = points.iter_mut().find(|p| p.label == label && p.adaptive == adaptive) {
        p.outcome.cycles += outcome.cycles;
        p.outcome.errors += outcome.errors;
        p.outcome.total_t_clk_ps += outcome.total_t_clk_ps;
    } else {
        points.push(Point { label, adaptive, outcome });
    }
}
