//! Reproduces **Table III**: average timing-error prediction accuracy of
//! TEVoT vs the Delay-based, TER-based and TEVoT-NH baselines, for the
//! four FUs and three datasets, averaged across all operating conditions
//! and clock speeds.
//!
//! Usage: `cargo run --release -p tevot-bench --bin
//! table3_prediction_accuracy [--full] [--seed N]`

use tevot_bench::config::StudyConfig;
use tevot_bench::models::{cell, evaluate_fu, FuModels, ModelKind};
use tevot_bench::study::{DatasetKind, Study};
use tevot_bench::table::{pct, TextTable};

fn main() {
    let config = StudyConfig::from_env();
    let _obs = config.observability();
    println!(
        "Table III reproduction: {} conditions x {} clock speedups, \
         {} train / {} test vectors per FU",
        config.conditions.len(),
        config.speedups.len(),
        config.train_random + 2 * config.train_app,
        config.test_len,
    );
    let num_trees = config.num_trees;
    let seed = config.seed;
    let study = Study::run(config);

    let mut table =
        TextTable::new(&["FU", "dataset", "TEVoT", "Delay-based", "TER-based", "TEVoT-NH"]);

    let mut grand: Vec<(ModelKind, Vec<f64>)> =
        ModelKind::ALL.iter().map(|&m| (m, Vec::new())).collect();

    for fu_study in &study.fus {
        tevot_obs::info!("training models for {}...", fu_study.fu);
        let mut models = FuModels::train(fu_study, num_trees, seed);
        tevot_obs::info!("evaluating {}...", fu_study.fu);
        let cells = evaluate_fu(fu_study, &mut models);
        for dataset in DatasetKind::ALL {
            let mut row = vec![fu_study.fu.name().to_string(), dataset.name().to_string()];
            for model in ModelKind::ALL {
                let c = cell(&cells, dataset, model);
                row.push(pct(c.mean_accuracy));
                grand
                    .iter_mut()
                    .find(|(m, _)| *m == model)
                    .expect("model tracked")
                    .1
                    .push(c.mean_accuracy);
            }
            table.row_owned(row);
        }
    }

    println!("\n{}", table.render());
    println!("Averages across all FUs and datasets:");
    for (model, values) in &grand {
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        println!("  {:>11}: {}", model.name(), pct(mean));
    }
    println!(
        "\nPaper (Table III) averages: TEVoT 98.25%, Delay-based 7.21%, \
         TER-based 75.07%, TEVoT-NH 80.30%"
    );
}
