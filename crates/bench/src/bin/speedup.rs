//! Reproduces the paper's Sec. V-C speed claim: "TEVoT is **100X faster**
//! than gate-level simulation on average across different FUs", and its
//! corollary that model inference cost does not scale with circuit
//! complexity while simulation cost does.
//!
//! Usage: `cargo run --release -p tevot-bench --bin speedup [--tiny]`

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot::dta::Characterizer;
use tevot::workload::random_workload;
use tevot::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
use tevot_bench::config::StudyConfig;
use tevot_bench::table::TextTable;
use tevot_netlist::fu::FunctionalUnit;
use tevot_timing::{ClockSpeedup, OperatingCondition};

fn main() {
    let config = StudyConfig::from_env();
    let _obs = config.observability();
    let cond = OperatingCondition::new(0.9, 50.0);
    let n_train = config.train_random.min(1000);
    let n_bench = 2000;

    let mut table =
        TextTable::new(&["FU", "cells", "sim cycles/s", "TEVoT predictions/s", "speedup"]);
    let mut ratios = Vec::new();

    for fu in FunctionalUnit::ALL {
        tevot_obs::info!("{fu}...");
        let characterizer = Characterizer::new(fu);
        let train = random_workload(fu, n_train, config.seed);
        let truth = characterizer.characterize(cond, &train, &ClockSpeedup::PAPER);
        let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&train, &truth)]);
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let model = TevotModel::train(&data, &TevotParams::default(), &mut rng);

        // Gate-level simulation throughput.
        let bench = random_workload(fu, n_bench, config.seed + 7);
        let t0 = Instant::now();
        let trace = characterizer.trace(cond, &bench);
        let sim_time = t0.elapsed();
        let sim_rate = n_bench as f64 / sim_time.as_secs_f64();
        assert_eq!(trace.cycles().len(), n_bench);

        // Model inference throughput on the same transitions.
        let ops = bench.operands();
        let t0 = Instant::now();
        let mut acc = 0.0;
        for t in 1..ops.len() {
            acc += model.predict_delay_ps(cond, ops[t], ops[t - 1]);
        }
        let infer_time = t0.elapsed();
        assert!(acc > 0.0);
        let infer_rate = (n_bench - 1) as f64 / infer_time.as_secs_f64();

        let ratio = infer_rate / sim_rate;
        ratios.push(ratio);
        table.row_owned(vec![
            fu.name().to_string(),
            characterizer.netlist().num_cells().to_string(),
            format!("{sim_rate:.0}"),
            format!("{infer_rate:.0}"),
            format!("{ratio:.0}x"),
        ]);
    }

    println!("\n{}", table.render());
    let geo: f64 = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    println!("geometric-mean speedup: {:.0}x (paper: ~100x on average)", geo.exp());
    println!(
        "Note the scaling asymmetry the paper highlights: simulation slows with \
         cell count while inference cost is flat (a fixed set of decision rules)."
    );
}
