//! Reproduces **Table II**: prediction accuracy and training/testing wall
//! time of the four candidate learning methods (LR, k-NN, SVM, random
//! forest) on the timing-error classification task.
//!
//! As in the paper, each method classifies cycles directly into
//! {timing correct, timing erroneous} at the 10 % clock speedup; the
//! winner (the random forest) is what TEVoT builds on. Expected shape:
//! RF clearly most accurate; k-NN and SVM pay enormous testing/training
//! time respectively; LR is fast but inaccurate.
//!
//! Usage: `cargo run --release -p tevot-bench --bin
//! table2_method_comparison [--full] [--tiny]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot::FeatureEncoding;
use tevot_bench::config::StudyConfig;
use tevot_bench::study::Study;
use tevot_bench::table::{pct, TextTable};
use tevot_ml::metrics::{accuracy, timed};
use tevot_ml::{
    Dataset, ForestParams, KnnClassifier, LinearClassifier, LinearSvm, RandomForestClassifier,
    SvmParams,
};
use tevot_netlist::fu::FunctionalUnit;

/// Builds the error-classification dataset at the given speedup index.
fn classification_data(study: &Study, speed_idx: usize) -> Dataset {
    let encoding = FeatureEncoding::with_history();
    let fu_study = study.fu(FunctionalUnit::IntMul);
    let mut data = Dataset::new(encoding.num_features());
    let mut row = Vec::new();
    for cond_study in &fu_study.conditions {
        let ops = fu_study.train_workload.operands();
        let flags = cond_study.train.erroneous(speed_idx);
        for t in 1..ops.len() {
            encoding.encode_into(cond_study.condition, ops[t], ops[t - 1], &mut row);
            data.push(&row, flags[t] as u8 as f64);
        }
    }
    data
}

fn main() {
    let config = StudyConfig::from_env();
    let _obs = config.observability();
    println!(
        "Table II reproduction: method comparison on INT MUL error \
         classification at the 5% speedup ({} conditions)",
        config.conditions.len()
    );
    let seed = config.seed;
    let study = Study::run_single(config, FunctionalUnit::IntMul);

    let data = classification_data(&study, 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let (train, test) = data.split(0.5, &mut rng);
    let actual: Vec<bool> = test.labels().iter().map(|&l| l == 1.0).collect();
    println!(
        "{} training rows, {} test rows, {} features, base error rate {}",
        train.len(),
        test.len(),
        train.num_features(),
        pct(actual.iter().filter(|&&e| e).count() as f64 / actual.len() as f64),
    );

    let mut table = TextTable::new(&["method", "Accuracy", "Training Time", "Testing Time"]);

    // LR: linear regression on 0/1 labels, thresholded (paper Sec. IV-B2).
    let (lr, fit_t) = timed(|| LinearClassifier::fit(&train, 1e-6));
    let (pred, test_t) = timed(|| lr.predict_batch(&test));
    table.row_owned(vec![
        "LR".into(),
        pct(accuracy(&pred, &actual)),
        format!("{fit_t:.2?}"),
        format!("{test_t:.2?}"),
    ]);

    // k-NN (k = 5): training is storage; testing is the brute-force scan.
    let (knn, fit_t) = timed(|| KnnClassifier::fit(&train, 5));
    let (pred, test_t) = timed(|| knn.predict_batch(&test));
    table.row_owned(vec![
        "KNN".into(),
        pct(accuracy(&pred, &actual)),
        format!("{fit_t:.2?}"),
        format!("{test_t:.2?}"),
    ]);

    // Linear SVM via Pegasos; extra epochs mirror the method's cost.
    let (svm, fit_t) =
        timed(|| LinearSvm::fit(&train, &SvmParams { lambda: 1e-5, epochs: 60 }, &mut rng));
    let (pred, test_t) = timed(|| svm.predict_batch(&test));
    table.row_owned(vec![
        "SVM".into(),
        pct(accuracy(&pred, &actual)),
        format!("{fit_t:.2?}"),
        format!("{test_t:.2?}"),
    ]);

    // Random forest with the paper's defaults (10 trees, all features).
    let (rf, fit_t) =
        timed(|| RandomForestClassifier::fit(&train, &ForestParams::default(), &mut rng));
    let (pred, test_t) = timed(|| rf.predict_batch(&test));
    table.row_owned(vec![
        "RFC".into(),
        pct(accuracy(&pred, &actual)),
        format!("{fit_t:.2?}"),
        format!("{test_t:.2?}"),
    ]);

    println!("\n{}", table.render());
    println!(
        "Paper (Table II): LR 82.3% (6.84s / 2.24s), KNN 81.7% (127s / 3548s), \
         SVM 92.2% (15653s / 9879s), RFC 98.3% (142s / 3.5s)"
    );
}
