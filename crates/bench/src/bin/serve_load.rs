//! Load generator for the tevot-serve online inference server.
//!
//! Two modes:
//!
//! * **External** (`--addr host:port`): drives an already-running
//!   server — what the CI smoke job does after launching `tevot serve`
//!   on a loopback port.
//! * **Self-hosted** (`--model-file model.tevot`): loads the model,
//!   starts an in-process server on `127.0.0.1:0`, drives it, and shuts
//!   it down — a one-command serving benchmark. With `--replicas N` the
//!   self-hosted server becomes a tevot-fleet consistent-hash router
//!   over N in-process replicas, so the whole replicated data path
//!   (placement, failover, health loop) is benchmarked end to end.
//!
//! ```text
//! serve_load (--addr host:port | --model-file model.tevot)
//!            [--requests N] [--connections N] [--transitions N]
//!            [--replicas N] [--dfs] [--label NAME] [--out report.json]
//!            [--expect-clean] [--max-shed N]
//! ```
//!
//! `--dfs` drives `POST /dfs` (clock recommendations) instead of
//! `POST /predict`, and reports `serve.dfs_qps`/`serve.dfs_p50_us`/
//! `serve.dfs_p99_us` so the two data paths stay distinct in tracked
//! reports.
//!
//! `--out` writes a `tevot-bench/1` report with `serve.qps`,
//! `serve.p50_us` and `serve.p99_us`, comparable with `bench_compare`.
//! `--expect-clean` exits 1 if any request was shed or failed — the CI
//! smoke assertion. `--max-shed N` is the chaos-tolerant variant: errors
//! must still be zero, but up to N shed responses are allowed (a replica
//! kill under load legitimately sheds a bounded burst while the router
//! ejects the corpse).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use tevot_bench::baseline::BenchReport;
use tevot_fleet::{InProcessLauncher, Router, RouterConfig};
use tevot_serve::loadgen::{run, LoadConfig};
use tevot_serve::{ServeConfig, Server, DEFAULT_MODEL};

const USAGE: &str = "usage: serve_load (--addr host:port | --model-file model.tevot) \
                     [--requests N] [--connections N] [--transitions N] \
                     [--replicas N] [--dfs] [--label NAME] [--out report.json] \
                     [--expect-clean] [--max-shed N]";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("serve_load: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut addr = None;
    let mut model_file = None;
    let mut out: Option<PathBuf> = None;
    let mut label = "serve".to_string();
    let mut config = LoadConfig::default();
    let mut expect_clean = false;
    let mut max_shed: Option<usize> = None;
    let mut replicas = 1usize;

    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| iter.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--addr" => match value("--addr") {
                Ok(v) => addr = Some(v),
                Err(e) => return usage_error(&e),
            },
            "--model-file" => match value("--model-file") {
                Ok(v) => model_file = Some(v),
                Err(e) => return usage_error(&e),
            },
            "--label" => match value("--label") {
                Ok(v) => label = v,
                Err(e) => return usage_error(&e),
            },
            "--out" => match value("--out") {
                Ok(v) => out = Some(PathBuf::from(v)),
                Err(e) => return usage_error(&e),
            },
            "--requests" | "--connections" | "--transitions" | "--replicas" => {
                let parsed = match value(&arg).map(|v| v.parse::<usize>()) {
                    Ok(Ok(n)) if n > 0 => n,
                    _ => return usage_error(&format!("{arg} needs a positive integer")),
                };
                match arg.as_str() {
                    "--requests" => config.requests = parsed,
                    "--connections" => config.connections = parsed,
                    "--transitions" => config.transitions = parsed,
                    _ => replicas = parsed,
                }
            }
            "--max-shed" => {
                max_shed = match value("--max-shed").map(|v| v.parse::<usize>()) {
                    Ok(Ok(n)) => Some(n),
                    _ => return usage_error("--max-shed needs a non-negative integer"),
                };
            }
            "--expect-clean" => expect_clean = true,
            "--dfs" => config.dfs = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    // Self-hosted mode keeps the server (or replicated router) alive for
    // the duration of the run; external mode leaves lifecycle to the
    // caller.
    let mut server: Option<Server> = None;
    let mut router: Option<Router> = None;
    match (&addr, &model_file) {
        (Some(_), Some(_)) => return usage_error("--addr and --model-file are mutually exclusive"),
        (None, None) => return usage_error("need --addr or --model-file"),
        (Some(a), None) => {
            if replicas > 1 {
                return usage_error("--replicas needs --model-file (self-hosted mode)");
            }
            config.addr = a.clone();
        }
        (None, Some(path)) => {
            let model = match tevot::TevotModel::load_path(Path::new(path)) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("serve_load: cannot load {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            if replicas > 1 {
                let router_config = RouterConfig { replicas, ..RouterConfig::default() };
                match Router::start(router_config, Arc::new(InProcessLauncher { model })) {
                    Ok(r) => {
                        config.addr = r.local_addr().to_string();
                        router = Some(r);
                    }
                    Err(e) => {
                        eprintln!("serve_load: cannot start replicated fleet: {e}");
                        return ExitCode::from(2);
                    }
                }
            } else {
                match Server::start(ServeConfig::default()) {
                    Ok(s) => {
                        s.state().registry.insert(DEFAULT_MODEL, model);
                        config.addr = s.local_addr().to_string();
                        server = Some(s);
                    }
                    Err(e) => {
                        eprintln!("serve_load: cannot start server: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
        }
    }

    let outcome = run(&config);
    if let Some(server) = server {
        server.shutdown();
    }
    if let Some(mut router) = router {
        router.shutdown();
    }

    println!(
        "serve_load: {} {} requests to {} over {} connections ({} transitions each{})",
        outcome.requests,
        if config.dfs { "/dfs" } else { "/predict" },
        config.addr,
        config.connections,
        config.transitions,
        if replicas > 1 { format!(", {replicas} replicas") } else { String::new() }
    );
    println!(
        "  ok {}  shed {}  errors {}  reconnects {}  |  {:.0} req/s  p50 {:.0} us  p99 {:.0} us",
        outcome.ok,
        outcome.shed,
        outcome.errors,
        outcome.reconnects,
        outcome.qps,
        outcome.p50_us,
        outcome.p99_us
    );

    if let Some(out) = out {
        let mut report = BenchReport::new(&label);
        if config.dfs {
            report.push("serve.dfs_qps", outcome.qps, "req/s", true);
            report.push("serve.dfs_p50_us", outcome.p50_us, "us", false);
            report.push("serve.dfs_p99_us", outcome.p99_us, "us", false);
        } else {
            report.push("serve.qps", outcome.qps, "req/s", true);
            report.push("serve.p50_us", outcome.p50_us, "us", false);
            report.push("serve.p99_us", outcome.p99_us, "us", false);
        }
        if let Err(e) = report.save(&out) {
            eprintln!("serve_load: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
        println!("wrote {} (label {label:?})", out.display());
    }

    if expect_clean && (outcome.shed > 0 || outcome.errors > 0) {
        eprintln!(
            "serve_load: --expect-clean failed: {} shed, {} errors",
            outcome.shed, outcome.errors
        );
        return ExitCode::from(1);
    }
    if let Some(budget) = max_shed {
        if outcome.errors > 0 || outcome.shed > budget {
            eprintln!(
                "serve_load: --max-shed {budget} exceeded: {} shed, {} errors",
                outcome.shed, outcome.errors
            );
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
