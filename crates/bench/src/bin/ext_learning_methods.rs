//! **Extension** (paper Sec. V-E "Learning method"): does a more advanced
//! learner move the needle on TEVoT's hardest cell?
//!
//! The INT MUL / random-data cell is the regime where the overclocked
//! period cuts into the bulk of a tightly clustered delay distribution, so
//! classification demands fine delay resolution — the random forest's
//! weakest spot (bagging regresses to the mean). This binary trains the
//! paper's forest and a gradient-boosted ensemble on identical data and
//! compares out-of-sample delay RMSE and error-classification accuracy at
//! all three clock speedups.
//!
//! Usage: `cargo run --release -p tevot-bench --bin ext_learning_methods`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot::dta::Characterizer;
use tevot::workload::random_workload;
use tevot::{build_delay_dataset, FeatureEncoding};
use tevot_bench::config::StudyConfig;
use tevot_bench::table::{pct, TextTable};
use tevot_ml::metrics::{accuracy, root_mean_square_error};
use tevot_ml::{
    BoostParams, Dataset, ForestParams, GradientBoostedRegressor, LinearRegression,
    RandomForestRegressor,
};
use tevot_netlist::fu::FunctionalUnit;
use tevot_timing::{ClockSpeedup, OperatingCondition};

fn encode_test(encoding: FeatureEncoding, cond: OperatingCondition, ops: &[(u32, u32)]) -> Dataset {
    let mut data = Dataset::new(encoding.num_features());
    let mut row = Vec::new();
    for t in 1..ops.len() {
        encoding.encode_into(cond, ops[t], ops[t - 1], &mut row);
        data.push(&row, 0.0);
    }
    data
}

fn main() {
    let config = StudyConfig::from_env();
    let _obs = config.observability();
    let fu = FunctionalUnit::IntMul;
    let cond = OperatingCondition::new(0.9, 50.0);
    let encoding = FeatureEncoding::with_history();
    let characterizer = Characterizer::new(fu);

    tevot_obs::info!("characterizing {fu} at {cond}...");
    let train = random_workload(fu, 1600, config.seed);
    let truth = characterizer.characterize(cond, &train, &ClockSpeedup::PAPER);
    let data = build_delay_dataset(encoding, &[(&train, &truth)]);

    let test = random_workload(fu, 600, config.seed + 1);
    let test_truth = characterizer.characterize_with_periods(cond, &test, truth.clock_periods_ps());
    let test_rows = encode_test(encoding, cond, test.operands());
    let actual_delays: Vec<f64> = test_truth.delays_ps()[1..].iter().map(|&d| d as f64).collect();

    let mut rng = SmallRng::seed_from_u64(config.seed);
    tevot_obs::info!("fitting models...");
    let rf = RandomForestRegressor::fit(&data, &ForestParams::default(), &mut rng);
    let gbt = GradientBoostedRegressor::fit(
        &data,
        &BoostParams { num_rounds: 150, learning_rate: 0.15, ..Default::default() },
        &mut rng,
    );
    let lr = LinearRegression::fit(&data, 1e-6);

    let mut table =
        TextTable::new(&["model", "delay RMSE (ps)", "acc @5%", "acc @10%", "acc @15%"]);
    println!(
        "{fu} at {cond}: out-of-sample delay regression and error classification\n\
         (ground-truth TERs: {})\n",
        (0..3).map(|i| pct(test_truth.timing_error_rate(i))).collect::<Vec<_>>().join(" / ")
    );
    let mut score = |name: &str, pred: Vec<f64>| {
        let rmse = root_mean_square_error(&pred, &actual_delays);
        let mut row = vec![name.to_string(), format!("{rmse:.0}")];
        for (i, &clock) in test_truth.clock_periods_ps().iter().enumerate() {
            let predicted: Vec<bool> = pred.iter().map(|&d| d > clock as f64).collect();
            let truth_flags: Vec<bool> = test_truth.erroneous(i)[1..].to_vec();
            row.push(pct(accuracy(&predicted, &truth_flags)));
        }
        table.row_owned(row);
    };
    score("random forest (paper)", rf.predict_batch(&test_rows));
    score("gradient boosting", gbt.predict_batch(&test_rows));
    score("linear regression", lr.predict_batch(&test_rows));
    println!("{}", table.render());
    println!(
        "Observation: at this training size all three learners converge to the \
         same RMSE and accuracy — in the bulk-distribution regime the residual \
         is dominated by delay variation the {{V, T, x[t], x[t-1]}} features \
         cannot resolve (glitch-order effects deep in the array), so the paper's \
         'more advanced learning algorithms' future-work direction needs richer \
         features, not just richer models, to crack this cell."
    );
}
