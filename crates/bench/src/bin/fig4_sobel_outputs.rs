//! Reproduces **Fig. 4**: example Sobel filter outputs under timing
//! errors, as judged by gate-level simulation (ground truth) and by the
//! TEVoT / TEVoT-NH / TER-based models.
//!
//! The binary picks the operating point with the highest simulated TER (an
//! "unacceptable" corner like the paper's 27 dB example), injects each
//! model's predicted TERs, writes the output images as PGM files into
//! `fig4_out/`, and prints their PSNR. The Delay-based model is omitted
//! from the images exactly as in the paper: predicting an error on every
//! cycle, it "always leads to completely corrupted output".
//!
//! Usage: `cargo run --release -p tevot-bench --bin fig4_sobel_outputs
//! [--full] [--tiny]`

use std::fs;
use std::path::Path;

use tevot_bench::config::StudyConfig;
use tevot_bench::models::{ground_truth_rates, model_rates, FuModels, ModelKind};
use tevot_bench::study::Study;
use tevot_imgproc::quality::inject_and_score;
use tevot_imgproc::{Application, ExactArithmetic, FuArithmetic as _};

fn main() -> Result<(), String> {
    let config = StudyConfig::from_env();
    let _obs = config.observability();
    let num_trees = config.num_trees;
    let seed = config.seed;
    let study = Study::run(config);

    tevot_obs::info!("training models...");
    let mut models: Vec<FuModels> =
        study.fus.iter().map(|f| FuModels::train(f, num_trees, seed)).collect();

    // Pick the (condition, speed) with the worst simulated Sobel quality.
    let num_speeds = study.config.speedups.len();
    let mut worst = (0usize, 0usize, -1.0f64);
    for cond_idx in 0..study.fus[0].conditions.len() {
        for speed_idx in 0..num_speeds {
            let rates = ground_truth_rates(&study, Application::Sobel, cond_idx, speed_idx);
            let total = rates.int_add + rates.int_mul + rates.fp_add + rates.fp_mul;
            if total > worst.2 {
                worst = (cond_idx, speed_idx, total);
            }
        }
    }
    let (cond_idx, speed_idx, _) = worst;
    let cond = study.fus[0].conditions[cond_idx].condition;
    let speedup = study.config.speedups[speed_idx];
    println!("Fig. 4 reproduction: Sobel at {cond}, clock speedup {speedup}");

    let image = &study.corpus[0];
    let out_dir = Path::new("fig4_out");
    write_or_err(fs::create_dir_all(out_dir), out_dir)?;

    let mut exact = ExactArithmetic;
    let reference = Application::Sobel.run(image, &mut exact);
    write_or_err(
        fs::write(out_dir.join("reference.pgm"), reference.to_pgm()),
        &out_dir.join("reference.pgm"),
    )?;
    let _ = exact.int_add(0, 0);

    let corpus = std::slice::from_ref(image);
    let truth_rates = ground_truth_rates(&study, Application::Sobel, cond_idx, speed_idx);
    let sim = inject_and_score(Application::Sobel, corpus, truth_rates, seed);
    let res = fs::write(out_dir.join("ground_truth.pgm"), {
        let mut faulty = tevot_imgproc::FaultyArithmetic::new(truth_rates, seed ^ (0 << 17));
        Application::Sobel.run(image, &mut faulty).to_pgm()
    });
    write_or_err(res, &out_dir.join("ground_truth.pgm"))?;
    println!("  ground truth (gate-level sim TERs {truth_rates:?}): {:.1} dB", sim.psnr_db[0]);

    for model in [ModelKind::Tevot, ModelKind::TevotNh, ModelKind::TerBased] {
        let rates =
            model_rates(&study, &mut models, Application::Sobel, cond_idx, speed_idx, model);
        let out = inject_and_score(Application::Sobel, corpus, rates, seed ^ 0xABCD);
        let file = format!("{}.pgm", model.name().to_lowercase().replace('-', "_"));
        write_or_err(
            fs::write(out_dir.join(&file), {
                let mut faulty = tevot_imgproc::FaultyArithmetic::new(rates, seed ^ 0xABCD);
                Application::Sobel.run(image, &mut faulty).to_pgm()
            }),
            &out_dir.join(&file),
        )?;
        println!(
            "  {} (predicted TERs {rates:?}): {:.1} dB -> fig4_out/{file}",
            model.name(),
            out.psnr_db[0]
        );
    }
    println!(
        "\nPaper (Fig. 4): ground truth 27 dB, TEVoT 25 dB, TEVoT-NH 56 dB, \
         TER-based 48 dB — TEVoT is the model whose output quality tracks \
         the simulation."
    );
    Ok(())
}

/// Converts a filesystem error into a message naming the offending path.
fn write_or_err(result: std::io::Result<()>, path: &Path) -> Result<(), String> {
    result.map_err(|e| format!("cannot write {}: {e}", path.display()))
}
