//! Plain-text table rendering for the experiment binaries.

/// A fixed-width text table.
///
/// # Examples
///
/// ```
/// use tevot_bench::table::TextTable;
///
/// let mut t = TextTable::new(&["FU", "accuracy"]);
/// t.row(&["INT ADD", "99.9%"]);
/// let s = t.render();
/// assert!(s.contains("INT ADD"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, (cell, &w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `98.3%`.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.98253), "98.3%");
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(pct(0.0721), "7.2%");
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one"]);
    }
}
