//! Experiment scaling.
//!
//! The paper's full experiment (100 conditions, 200 K training vectors,
//! a Xeon server) is out of reach for a single-core CI box, so every
//! experiment binary runs a reduced but shape-preserving configuration by
//! default and accepts `--full` for the complete Table I grid. See
//! DESIGN.md ("Scaling note").

use std::path::PathBuf;

use tevot_timing::{ClockSpeedup, ConditionGrid};

/// Sizing knobs shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Operating-condition grid.
    pub conditions: ConditionGrid,
    /// Clock speedups (paper: 5/10/15 %).
    pub speedups: Vec<ClockSpeedup>,
    /// Random training vectors per FU.
    pub train_random: usize,
    /// Application training vectors per FU per application (the paper's
    /// "5% randomly-picked images" slice).
    pub train_app: usize,
    /// Test vectors per FU per dataset.
    pub test_len: usize,
    /// Synthetic corpus: image count and square edge length.
    pub corpus_images: usize,
    /// Edge length of each corpus image.
    pub image_size: usize,
    /// Random-forest size (paper default: 10).
    pub num_trees: usize,
    /// Length of the Fmax characterization suite (random + directed
    /// corners) that sets each condition's fastest error-free period.
    pub characterization_len: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for the `tevot-par` pool (`--jobs N`); `None` defers
    /// to `TEVOT_JOBS` or the machine's available parallelism. Results are
    /// bit-identical at every value.
    pub jobs: Option<usize>,
    /// Log-level shift relative to the `TEVOT_LOG` default: each
    /// `--verbose`/`-v` adds one, each `--quiet`/`-q` subtracts one.
    pub verbosity: i32,
    /// Where to write the `tevot-obs/1` metrics JSON (`--metrics <path>`).
    pub metrics_path: Option<PathBuf>,
    /// Where to write the Chrome/Perfetto trace JSON (`--trace <path>`).
    pub trace_path: Option<PathBuf>,
    /// Checkpoint directory for crash-safe resumable characterization
    /// (`--resume <dir>`): completed conditions are journaled as atomic
    /// shards and skipped on restart. `None` disables checkpointing.
    pub resume: Option<PathBuf>,
    /// Wall-clock budget in milliseconds (`--deadline-ms N`): a watchdog
    /// cancels the study cooperatively once it elapses, after flushing
    /// the checkpoint shards of every completed condition.
    pub deadline_ms: Option<u64>,
}

impl StudyConfig {
    /// The default reduced configuration: the Fig. 3 condition grid
    /// (9 points) and a few thousand vectors per FU.
    pub fn quick() -> Self {
        StudyConfig {
            conditions: ConditionGrid::fig3(),
            speedups: ClockSpeedup::PAPER.to_vec(),
            train_random: 1500,
            // At least one whole wavefront block of every kernel's op
            // stream, so the training slice sees every instruction slot.
            train_app: 600,
            test_len: 500,
            corpus_images: 6,
            image_size: 48,
            num_trees: 10,
            characterization_len: 300,
            seed: 0xDAC2020,
            jobs: None,
            verbosity: 0,
            metrics_path: None,
            trace_path: None,
            resume: None,
            deadline_ms: None,
        }
    }

    /// The full Table I grid (100 conditions) with larger samples. Expect
    /// tens of minutes of single-core runtime.
    pub fn full() -> Self {
        StudyConfig {
            conditions: ConditionGrid::paper(),
            train_random: 2500,
            train_app: 800,
            test_len: 800,
            corpus_images: 10,
            image_size: 64,
            ..Self::quick()
        }
    }

    /// A minimal smoke-test configuration (used by integration tests and
    /// `--tiny`): three conditions, a few hundred vectors.
    pub fn tiny() -> Self {
        StudyConfig {
            conditions: ConditionGrid::new(vec![0.81, 1.00], vec![0.0, 100.0]),
            train_random: 400,
            train_app: 200,
            test_len: 150,
            corpus_images: 2,
            image_size: 32,
            ..Self::quick()
        }
    }

    /// Parses command-line arguments: `--full` selects [`Self::full`],
    /// `--tiny` the smoke-test scale, `--seed N` overrides the RNG seed,
    /// `--jobs N` sets the worker-thread count (otherwise `TEVOT_JOBS` or
    /// the machine decides), `--verbose`/`-v` and `--quiet`/`-q` shift the
    /// log level, `--metrics <path>` requests the `tevot-obs/1` JSON
    /// report, and `--trace <path>` a Chrome/Perfetto timeline trace.
    /// `--resume <dir>` checkpoints each completed condition to `dir`
    /// and skips already-completed ones on restart; `--deadline-ms N`
    /// arms a watchdog that cancels the study gracefully (exit code 6)
    /// once the budget elapses.
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let args: Vec<String> = args.collect();
        let mut config = if args.iter().any(|a| a == "--full") {
            Self::full()
        } else if args.iter().any(|a| a == "--tiny") {
            Self::tiny()
        } else {
            Self::quick()
        };
        if let Some(pos) = args.iter().position(|a| a == "--seed") {
            if let Some(seed) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
                config.seed = seed;
            }
        }
        for a in &args {
            match a.as_str() {
                "--verbose" | "-v" => config.verbosity += 1,
                "--quiet" | "-q" => config.verbosity -= 1,
                _ => {}
            }
        }
        if let Some(pos) = args.iter().position(|a| a == "--jobs") {
            config.jobs = args.get(pos + 1).and_then(|s| s.parse().ok());
        }
        if let Some(pos) = args.iter().position(|a| a == "--metrics") {
            config.metrics_path = args.get(pos + 1).map(PathBuf::from);
        }
        if let Some(pos) = args.iter().position(|a| a == "--trace") {
            config.trace_path = args.get(pos + 1).map(PathBuf::from);
        }
        if let Some(pos) = args.iter().position(|a| a == "--resume") {
            config.resume = args.get(pos + 1).map(PathBuf::from);
        }
        if let Some(pos) = args.iter().position(|a| a == "--deadline-ms") {
            match args.get(pos + 1).map(|s| s.parse::<u64>()) {
                Some(Ok(ms)) => config.deadline_ms = Some(ms),
                _ => {
                    eprintln!("error: --deadline-ms expects a duration in milliseconds");
                    std::process::exit(tevot_resil::ErrorKind::Usage.exit_code() as i32);
                }
            }
        }
        config
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Applies the parsed verbosity to the global log level and returns
    /// the RAII reporter every experiment binary should hold in `main`:
    /// on drop it writes the `--metrics` JSON and `--trace` timeline (if
    /// requested) and, when `TEVOT_OBS_SUMMARY` is set, prints the stderr
    /// summary. Passing `--trace` also enables the trace recorder for the
    /// whole run.
    pub fn observability(&self) -> tevot_obs::report::FinishGuard {
        if self.verbosity != 0 {
            tevot_obs::adjust_level(self.verbosity);
        }
        if let Some(jobs) = self.jobs {
            tevot_par::set_jobs(jobs);
        }
        tevot_obs::report::FinishGuard::new()
            .metrics_path(self.metrics_path.clone())
            .trace_path(self.trace_path.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_uses_fig3_grid() {
        let c = StudyConfig::quick();
        assert_eq!(c.conditions.len(), 9);
        assert_eq!(c.speedups.len(), 3);
        assert_eq!(c.num_trees, 10);
    }

    #[test]
    fn full_flag_selects_paper_grid() {
        let c = StudyConfig::from_args(["--full".to_string()].into_iter());
        assert_eq!(c.conditions.len(), 100);
    }

    #[test]
    fn seed_override() {
        let c = StudyConfig::from_args(["--seed".to_string(), "123".to_string()].into_iter());
        assert_eq!(c.seed, 123);
        assert_eq!(c.conditions.len(), 9);
    }

    #[test]
    fn jobs_flag() {
        let c = StudyConfig::from_args(["--jobs".to_string(), "4".to_string()].into_iter());
        assert_eq!(c.jobs, Some(4));
        assert_eq!(StudyConfig::quick().jobs, None);
        let c = StudyConfig::from_args(["--jobs".to_string(), "nope".to_string()].into_iter());
        assert_eq!(c.jobs, None);
    }

    #[test]
    fn resume_and_deadline_flags() {
        let c = StudyConfig::from_args(
            [
                "--resume".to_string(),
                "ckpt".to_string(),
                "--deadline-ms".to_string(),
                "1500".to_string(),
            ]
            .into_iter(),
        );
        assert_eq!(c.resume.as_deref(), Some(std::path::Path::new("ckpt")));
        assert_eq!(c.deadline_ms, Some(1500));
        let c = StudyConfig::quick();
        assert_eq!(c.resume, None);
        assert_eq!(c.deadline_ms, None);
    }

    #[test]
    fn verbosity_and_metrics_flags() {
        let c = StudyConfig::from_args(
            ["-q".to_string(), "--metrics".to_string(), "out.json".to_string()].into_iter(),
        );
        assert_eq!(c.verbosity, -1);
        assert_eq!(c.metrics_path.as_deref(), Some(std::path::Path::new("out.json")));
        let c = StudyConfig::from_args(["--verbose".to_string(), "-v".to_string()].into_iter());
        assert_eq!(c.verbosity, 2);
        assert_eq!(c.metrics_path, None);
        assert_eq!(c.trace_path, None);
        let c = StudyConfig::from_args(
            ["--trace".to_string(), "timeline.json".to_string()].into_iter(),
        );
        assert_eq!(c.trace_path.as_deref(), Some(std::path::Path::new("timeline.json")));
    }
}
