//! Model training and the Table III / Table IV evaluation pipelines.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot::eval::{evaluate_predictor, mean_accuracy, predicted_ter, AccuracyPoint};
use tevot::{
    build_delay_dataset, DelayBased, ErrorPredictor, FeatureEncoding, TerBased, TevotModel,
    TevotParams,
};
use tevot_imgproc::quality::{estimation_accuracy, inject_and_score};
use tevot_imgproc::{Application, FuErrorRates, GrayImage};
use tevot_ml::ForestParams;
use tevot_netlist::fu::FunctionalUnit;

use crate::study::{dataset_index, DatasetKind, FuStudy, Study};

/// The four error models compared throughout the evaluation.
#[derive(Debug)]
pub struct FuModels {
    /// TEVoT (history features included).
    pub tevot: TevotModel,
    /// The TEVoT-NH ablation (no history features).
    pub tevot_nh: TevotModel,
    /// The Delay-based baseline.
    pub delay_based: DelayBased,
    /// The TER-based baseline.
    pub ter_based: TerBased,
}

/// Model identifiers in the paper's column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// TEVoT.
    Tevot,
    /// Delay-based baseline.
    DelayBased,
    /// TER-based baseline.
    TerBased,
    /// TEVoT without history.
    TevotNh,
}

impl ModelKind {
    /// All models in Table III column order.
    pub const ALL: [ModelKind; 4] =
        [ModelKind::Tevot, ModelKind::DelayBased, ModelKind::TerBased, ModelKind::TevotNh];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Tevot => "TEVoT",
            ModelKind::DelayBased => "Delay-based",
            ModelKind::TerBased => "TER-based",
            ModelKind::TevotNh => "TEVoT-NH",
        }
    }
}

impl FuModels {
    /// Trains all four models from one FU's study data.
    pub fn train(fu_study: &FuStudy, num_trees: usize, seed: u64) -> FuModels {
        let _span = tevot_obs::span!("train", "{}", fu_study.fu);
        let runs: Vec<_> =
            fu_study.conditions.iter().map(|c| (&fu_study.train_workload, &c.train)).collect();
        let mut params = TevotParams {
            forest: ForestParams { num_trees, ..ForestParams::default() },
            encoding: FeatureEncoding::with_history(),
        };

        let data = build_delay_dataset(params.encoding, &runs);
        let mut rng = SmallRng::seed_from_u64(seed);
        let tevot = TevotModel::train(&data, &params, &mut rng);

        params.encoding = FeatureEncoding::without_history();
        let data_nh = build_delay_dataset(params.encoding, &runs);
        let tevot_nh = TevotModel::train(&data_nh, &params, &mut rng);

        // The Delay-based baseline uses "the maximum delay measured
        // offline at each operating condition" — the offline measurement
        // covers both the Fmax suite and the training workload. TER-based
        // calibrates on the training workload's error rates alone.
        let delay_based =
            DelayBased::calibrate(fu_study.conditions.iter().flat_map(|c| [&c.train, &c.fmax]));
        let ter_based =
            TerBased::calibrate(fu_study.conditions.iter().map(|c| &c.train), seed ^ 0x7E57);

        FuModels { tevot, tevot_nh, delay_based, ter_based }
    }

    /// Mutable access to one model through the common predictor trait.
    pub fn predictor(&mut self, kind: ModelKind) -> &mut dyn ErrorPredictor {
        match kind {
            ModelKind::Tevot => &mut self.tevot,
            ModelKind::DelayBased => &mut self.delay_based,
            ModelKind::TerBased => &mut self.ter_based,
            ModelKind::TevotNh => &mut self.tevot_nh,
        }
    }
}

/// One Table III cell: the mean accuracy of a model on one (FU, dataset)
/// pair across all conditions and clock speeds, plus the per-point detail.
#[derive(Debug, Clone)]
pub struct AccuracyCell {
    /// The model evaluated.
    pub model: ModelKind,
    /// The dataset evaluated on.
    pub dataset: DatasetKind,
    /// Mean accuracy (Eq. 4) across conditions and speeds.
    pub mean_accuracy: f64,
    /// Per-(condition, speed) accuracy points.
    pub points: Vec<AccuracyPoint>,
}

/// Evaluates all four models on all three datasets for one FU — one row
/// group of Table III.
pub fn evaluate_fu(fu_study: &FuStudy, models: &mut FuModels) -> Vec<AccuracyCell> {
    let _span = tevot_obs::span!("evaluate", "{}", fu_study.fu);
    let mut cells = Vec::new();
    for dataset in DatasetKind::ALL {
        let workload = fu_study.test_workload(dataset);
        for model in ModelKind::ALL {
            let mut points = Vec::new();
            for cond_study in &fu_study.conditions {
                let truth = &cond_study.tests[dataset_index(dataset)];
                let _predict = tevot_obs::span!("predict");
                points.extend(evaluate_predictor(models.predictor(model), workload, truth));
            }
            cells.push(AccuracyCell {
                model,
                dataset,
                mean_accuracy: mean_accuracy(&points),
                points,
            });
        }
    }
    cells
}

/// Looks up one cell.
///
/// # Panics
///
/// Panics if the combination was not evaluated.
pub fn cell(cells: &[AccuracyCell], dataset: DatasetKind, model: ModelKind) -> &AccuracyCell {
    cells.iter().find(|c| c.dataset == dataset && c.model == model).expect("cell was evaluated")
}

/// The quality-estimation verdicts of one source (simulation or a model)
/// across all (condition, speed, image) points for one application.
#[derive(Debug, Clone)]
pub struct QualityVerdicts {
    /// Acceptability verdict per estimation point.
    pub verdicts: Vec<bool>,
    /// Mean PSNR per (condition, speed) point, for reporting.
    pub mean_psnr_db: Vec<f64>,
}

fn fu_index(study: &Study, fu: FunctionalUnit) -> usize {
    study
        .fus
        .iter()
        .position(|s| s.fu == fu)
        .unwrap_or_else(|| panic!("quality pipeline needs a full study; {fu} missing"))
}

/// Derives the per-FU TER set one model predicts for an application's
/// operand streams at one (condition index, speed index) point.
///
/// # Panics
///
/// Panics if the study does not cover all four FUs (applications draw
/// TERs from each).
pub fn model_rates(
    study: &Study,
    models: &mut [FuModels],
    app: Application,
    cond_idx: usize,
    speed_idx: usize,
    model: ModelKind,
) -> FuErrorRates {
    let dataset = match app {
        Application::Sobel => DatasetKind::Sobel,
        Application::Gaussian => DatasetKind::Gauss,
    };
    FuErrorRates::from_fn(|fu| {
        let fu_idx = fu_index(study, fu);
        let fu_study = &study.fus[fu_idx];
        let cond_study = &fu_study.conditions[cond_idx];
        let workload = fu_study.test_workload(dataset);
        predicted_ter(
            models[fu_idx].predictor(model),
            workload,
            cond_study.condition,
            cond_study.periods_ps[speed_idx],
        )
    })
}

/// Derives the simulation ground-truth TER set for an application at one
/// (condition index, speed index) point.
///
/// # Panics
///
/// Panics if the study does not cover all four FUs.
pub fn ground_truth_rates(
    study: &Study,
    app: Application,
    cond_idx: usize,
    speed_idx: usize,
) -> FuErrorRates {
    let dataset = match app {
        Application::Sobel => DatasetKind::Sobel,
        Application::Gaussian => DatasetKind::Gauss,
    };
    FuErrorRates::from_fn(|fu| {
        study.fus[fu_index(study, fu)].conditions[cond_idx].tests[dataset_index(dataset)]
            .timing_error_rate(speed_idx)
    })
}

/// Runs the full Table IV pipeline for one application: injects the
/// ground-truth TERs and each model's TERs at every (condition, speed)
/// point, classifies every output image, and scores each model's verdicts
/// against simulation's (Eq. 5).
///
/// Returns `(per-model estimation accuracy, simulation acceptance rate)`.
pub fn quality_study(
    study: &Study,
    models: &mut [FuModels],
    app: Application,
    corpus: &[GrayImage],
    seed: u64,
) -> (Vec<(ModelKind, f64)>, f64) {
    let num_conditions = study.fus[0].conditions.len();
    let num_speeds = study.config.speedups.len();

    let mut sim_verdicts = Vec::new();
    let mut model_verdicts: Vec<(ModelKind, Vec<bool>)> =
        ModelKind::ALL.iter().map(|&m| (m, Vec::new())).collect();

    for cond_idx in 0..num_conditions {
        for speed_idx in 0..num_speeds {
            let point_seed = seed ^ ((cond_idx as u64) << 32 | (speed_idx as u64) << 16);
            let truth_rates = ground_truth_rates(study, app, cond_idx, speed_idx);
            let sim = inject_and_score(app, corpus, truth_rates, point_seed);
            sim_verdicts.extend_from_slice(&sim.acceptable);

            for (model, verdicts) in &mut model_verdicts {
                let rates = model_rates(study, models, app, cond_idx, speed_idx, *model);
                let out = inject_and_score(app, corpus, rates, point_seed ^ 0xABCD);
                verdicts.extend_from_slice(&out.acceptable);
            }
        }
    }

    let sim_acceptance =
        sim_verdicts.iter().filter(|&&v| v).count() as f64 / sim_verdicts.len() as f64;
    let accuracies = model_verdicts
        .into_iter()
        .map(|(model, verdicts)| (model, estimation_accuracy(&verdicts, &sim_verdicts)))
        .collect();
    (accuracies, sim_acceptance)
}
