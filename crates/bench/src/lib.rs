//! Experiment harness for the TEVoT (DAC 2020) reproduction.
//!
//! Each table and figure of the paper's evaluation has a dedicated binary
//! in `src/bin/` (see DESIGN.md §7 for the experiment index); this library
//! hosts the machinery they share:
//!
//! * [`config::StudyConfig`] — quick/full experiment scaling;
//! * [`study::Study`] — workload construction and per-condition DTA for
//!   all four FUs;
//! * [`models`] — model training and the Table III / Table IV pipelines;
//! * [`table`] — plain-text table rendering;
//! * [`baseline`] + [`suite`] — the `bench_track`/`bench_compare`
//!   benchmark-tracking subsystem (persisted `tevot-bench/1` baselines
//!   and the regression gate).

#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod models;
pub mod study;
pub mod suite;
pub mod table;
