//! The fixed benchmark suite behind `bench_track`.
//!
//! One run measures, for every functional unit, the pipeline's three
//! throughput axes (gate-level simulation, feature extraction, model
//! inference) plus out-of-sample prediction accuracy, and rolls the
//! results into a [`BenchReport`](crate::baseline::BenchReport) whose
//! metric *names* are independent of scale: `--tiny` changes vector
//! counts, never the set of tracked metrics, so a tiny CI candidate
//! always lines up with the committed baseline in `bench_compare`.
//!
//! Throughputs come from wall-clock timing around the respective stage;
//! gate evaluations and featurized rows are read from the global
//! `tevot-obs` counters as before/after deltas, so a run sharing a
//! process with other work (tests) should use its own process or accept
//! slight over-counting.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot::dta::Characterizer;
use tevot::eval::{evaluate_predictor, mean_accuracy};
use tevot::workload::random_workload;
use tevot::{build_delay_dataset, TevotModel, TevotParams};
use tevot_netlist::fu::FunctionalUnit;
use tevot_obs::metrics::{CORE_ROWS_FEATURIZED, SIM_GATE_EVALS};
use tevot_obs::progress::Progress;
use tevot_resil::checkpoint::CheckpointDir;
use tevot_timing::{ClockSpeedup, OperatingCondition};

use crate::baseline::BenchReport;

/// Sizing knobs for one suite run.
#[derive(Debug, Clone)]
pub struct SuiteScale {
    /// Units to benchmark. The tracked metric names derive from this
    /// list, so baseline and candidate must use the same one.
    pub fus: Vec<FunctionalUnit>,
    /// Characterization/training vectors per unit.
    pub train_vectors: usize,
    /// Held-out test vectors per unit.
    pub test_vectors: usize,
    /// Random-forest size.
    pub num_trees: usize,
    /// Conditions in the parallel-sweep benchmark (first FU only).
    pub sweep_conditions: usize,
    /// Vectors per condition in the parallel-sweep benchmark.
    pub sweep_vectors: usize,
    /// Requests driven through the loopback serving benchmark.
    pub serve_requests: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl SuiteScale {
    /// The standard scale used for committed baselines.
    pub fn standard() -> SuiteScale {
        SuiteScale {
            fus: FunctionalUnit::ALL.to_vec(),
            train_vectors: 600,
            test_vectors: 300,
            num_trees: 10,
            sweep_conditions: 6,
            sweep_vectors: 200,
            serve_requests: 1000,
            seed: 0xDAC2020,
        }
    }

    /// The `--tiny` smoke scale: same units and metric names, fewer
    /// vectors and trees.
    pub fn tiny() -> SuiteScale {
        SuiteScale {
            train_vectors: 200,
            test_vectors: 120,
            num_trees: 4,
            sweep_conditions: 4,
            sweep_vectors: 80,
            serve_requests: 300,
            ..Self::standard()
        }
    }
}

/// Runs the fixed suite and returns the labelled report.
///
/// # Panics
///
/// Panics if `scale.fus` is empty or the vector counts are too small to
/// characterize (fewer than two cycles).
pub fn run_suite(label: &str, scale: &SuiteScale) -> BenchReport {
    let _span = tevot_obs::span!("bench.suite");
    assert!(!scale.fus.is_empty(), "suite needs at least one FU");
    let cond = OperatingCondition::new(0.9, 50.0);
    let mut report = BenchReport::new(label);
    let progress = Progress::new("bench-track", scale.fus.len() as u64);
    let suite_t0 = Instant::now();
    let mut featurize_rows = 0u64;
    let mut featurize_s = 0.0;
    let mut train_s = 0.0;

    // The event-engine trace of one unit, kept for the levelized-engine
    // stage below: (fu, workload, trace, wall seconds). Prefer IntMul —
    // the deepest netlist and the unit the gate's speedup floor names.
    let mut event_exemplar = None;

    for &fu in &scale.fus {
        let slug = fu.name().to_lowercase().replace(' ', "_");
        // Pin the event engine: `{slug}.sim_cycles_per_s` is the
        // event-driven reference the levelized speedup is measured
        // against, and must stay comparable across baselines.
        let characterizer = Characterizer::new(fu).with_engine(tevot_sim::Engine::Event);
        let train_w = random_workload(fu, scale.train_vectors, scale.seed);

        // Gate-level simulation throughput (cycles and gate evaluations
        // per second) over the training characterization run.
        let evals_before = SIM_GATE_EVALS.get();
        let t0 = Instant::now();
        let trace = characterizer.trace(cond, &train_w);
        let sim_s = t0.elapsed().as_secs_f64();
        if fu == FunctionalUnit::IntMul || event_exemplar.is_none() {
            event_exemplar = Some((fu, train_w.clone(), trace.clone(), sim_s));
        }
        let gate_evals = SIM_GATE_EVALS.get() - evals_before;
        report.push(
            format!("{slug}.sim_cycles_per_s"),
            scale.train_vectors as f64 / sim_s,
            "cycles/s",
            true,
        );
        report.push(format!("{slug}.gate_evals_per_s"), gate_evals as f64 / sim_s, "evals/s", true);
        tevot_obs::instant!("bench.simulated");

        // Ground truth at the paper's speedup periods, then featurize.
        let base_period = trace.fastest_error_free_period_ps();
        let periods: Vec<u64> =
            ClockSpeedup::PAPER.iter().map(|s| s.apply_to_period(base_period)).collect();
        let truth = trace.characterization(&periods);
        let params = TevotParams::default();
        let rows_before = CORE_ROWS_FEATURIZED.get();
        let t0 = Instant::now();
        let data = build_delay_dataset(params.encoding, &[(&train_w, &truth)]);
        featurize_s += t0.elapsed().as_secs_f64();
        featurize_rows += CORE_ROWS_FEATURIZED.get() - rows_before;

        // Training wall time (aggregated across units below).
        let mut params = params;
        params.forest.num_trees = scale.num_trees;
        let mut rng = SmallRng::seed_from_u64(scale.seed);
        let t0 = Instant::now();
        let mut model = TevotModel::train(&data, &params, &mut rng);
        train_s += t0.elapsed().as_secs_f64();
        tevot_obs::instant!("bench.trained");

        // Inference throughput on held-out transitions.
        let test_w = random_workload(fu, scale.test_vectors, scale.seed + 7);
        let ops = test_w.operands();
        let t0 = Instant::now();
        let mut acc = 0.0;
        for t in 1..ops.len() {
            acc += model.predict_delay_ps(cond, ops[t], ops[t - 1]);
        }
        let infer_s = t0.elapsed().as_secs_f64();
        assert!(acc > 0.0, "inference produced no delay mass");
        report.push(
            format!("{slug}.predictions_per_s"),
            (scale.test_vectors - 1) as f64 / infer_s,
            "preds/s",
            true,
        );

        // Out-of-sample accuracy at the shared period basis.
        let truth_test = characterizer.characterize_with_periods(cond, &test_w, &periods);
        let points = evaluate_predictor(&mut model, &test_w, &truth_test);
        report.push(format!("{slug}.accuracy_mean"), mean_accuracy(&points), "frac", true);

        progress.tick();
    }
    progress.finish();

    report.push("featurize.rows_per_s", featurize_rows as f64 / featurize_s, "rows/s", true);
    report.push("train.wall_s", train_s, "s", false);

    // Bit-parallel levelized engine vs the event-driven reference, on the
    // same unit, condition, and workload as the per-FU stage above. The
    // traces must agree bit for bit (the oracle contract), so this stage
    // is simultaneously the sweep-throughput benchmark and an end-to-end
    // differential check on every benchmark run.
    {
        let _span = tevot_obs::span!("bench.levelized");
        let (fu, work, event_trace, event_s) =
            event_exemplar.expect("per-FU stage ran at least once");
        let characterizer = Characterizer::new(fu); // default: levelized
        let t0 = Instant::now();
        let lev_trace = characterizer.trace(cond, &work);
        let lev_s = t0.elapsed().as_secs_f64();
        assert_eq!(
            lev_trace, event_trace,
            "levelized trace must be bit-identical to the event-driven oracle"
        );
        report.push(
            "sim.levelized_cycles_per_s",
            scale.train_vectors as f64 / lev_s,
            "cycles/s",
            true,
        );
        report.push("sim.speedup_vs_event", event_s / lev_s, "x", true);
    }

    // Parallel condition sweep on the first FU: throughput at the active
    // `--jobs`/`TEVOT_JOBS` level, plus the speedup over a forced
    // single-worker run. The two sweeps must agree bit for bit — that is
    // tevot-par's ordered-reduction contract — so this doubles as an
    // end-to-end determinism check on every benchmark run.
    let sweep_reference = {
        let _span = tevot_obs::span!("bench.par_sweep");
        let fu = scale.fus[0];
        let characterizer = Characterizer::new(fu);
        let sweep_w = random_workload(fu, scale.sweep_vectors, scale.seed + 13);
        let n = scale.sweep_conditions.max(2);
        let grid: Vec<OperatingCondition> = (0..n)
            .map(|i| {
                let f = i as f64 / (n - 1) as f64;
                OperatingCondition::new(0.81 + 0.19 * f, 100.0 * f)
            })
            .collect();
        let speedups = ClockSpeedup::PAPER.to_vec();
        let t0 = Instant::now();
        let serial = tevot_par::with_jobs(1, || {
            characterizer.characterize_sweep(&grid, &sweep_w, &speedups)
        });
        let serial_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let parallel = characterizer.characterize_sweep(&grid, &sweep_w, &speedups);
        let parallel_s = t0.elapsed().as_secs_f64();
        assert_eq!(serial, parallel, "parallel sweep must be bit-identical to --jobs 1");
        report.push("par.sweep_conds_per_s", n as f64 / parallel_s, "conds/s", true);
        report.push("par.sweep_speedup", serial_s / parallel_s, "x", true);
        (grid, parallel)
    };

    // Fleet sweep over the same grid, sharded across thread-mode workers
    // through the full lease protocol + checkpoint journal. The result
    // must match the in-process sweep bit for bit; the tracked metric is
    // the end-to-end coordination overhead (lease HTTP round-trips,
    // shard fsyncs, final assembly) on top of the raw simulation.
    {
        let _span = tevot_obs::span!("bench.fleet_sweep");
        let (grid, reference) = &sweep_reference;
        let dir = std::env::temp_dir().join(format!("tevot_bench_fleet_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut spec = tevot_fleet::FleetSweepSpec::new(
            scale.fus[0],
            scale.sweep_vectors,
            scale.seed + 13,
            &dir,
        );
        spec.conditions = grid.clone();
        spec.workers = 2;
        let token = tevot_resil::CancelToken::new();
        let t0 = Instant::now();
        let fleet = tevot_fleet::run_sweep(&spec, &token).expect("fleet sweep");
        let fleet_s = t0.elapsed().as_secs_f64();
        assert_eq!(&fleet, reference, "fleet sweep must be bit-identical to the in-process sweep");
        report.push("fleet.sweep_conds_per_s", grid.len() as f64 / fleet_s, "conds/s", true);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Checkpoint resilience: shard write throughput (tmp + fsync +
    // rename with a checksummed header) and resume-skip throughput (a
    // validated read replacing recomputation). The no-op failpoint
    // branches on these paths are part of what the regression gate
    // watches.
    {
        let _span = tevot_obs::span!("bench.resil");
        let dir = std::env::temp_dir().join(format!("tevot_bench_ckpt_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let ckpt = CheckpointDir::open(&dir).expect("open bench checkpoint dir");
        // Payload in the realm of a real condition shard (~16 KiB).
        let payload: Vec<u8> = (0..4096u32).flat_map(u32::to_le_bytes).collect();
        let n = 32;
        let t0 = Instant::now();
        for i in 0..n {
            ckpt.write(&format!("bench-{i}"), &payload).expect("write bench shard");
        }
        let write_s = t0.elapsed().as_secs_f64();
        report.push("resil.ckpt_write_per_s", n as f64 / write_s, "shards/s", true);

        let t0 = Instant::now();
        for i in 0..n {
            assert!(ckpt.read_valid(&format!("bench-{i}")).is_some(), "shard must round-trip");
        }
        let read_s = t0.elapsed().as_secs_f64();
        report.push("resil.resume_skip_per_s", n as f64 / read_s, "shards/s", true);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Online serving: a loopback tevot-serve instance under the
    // deterministic load generator. With fewer concurrent connections
    // than the admission bound every request must be answered 200, so
    // the stage asserts a clean run and tracks end-to-end throughput
    // (serve.qps) and tail latency (serve.p99_us) in the gate.
    let dfs_model = {
        let _span = tevot_obs::span!("bench.serve");
        let fu = scale.fus[0];
        let characterizer = Characterizer::new(fu);
        let serve_w = random_workload(fu, scale.train_vectors.min(300), scale.seed + 21);
        let truth = characterizer.characterize(cond, &serve_w, &ClockSpeedup::PAPER);
        let mut params = TevotParams::default();
        params.forest.num_trees = scale.num_trees.min(4);
        let data = build_delay_dataset(params.encoding, &[(&serve_w, &truth)]);
        let mut rng = SmallRng::seed_from_u64(scale.seed + 21);
        let model = TevotModel::train(&data, &params, &mut rng);

        // Watch at its default resolution, as production would run: the
        // tracked serve.qps therefore gates the telemetry overhead too.
        let config = tevot_serve::ServeConfig {
            watch: Some(tevot_serve::WatchConfig::default()),
            ..tevot_serve::ServeConfig::default()
        };
        let server = tevot_serve::Server::start(config).expect("bind loopback");
        server.state().registry.insert(tevot_serve::DEFAULT_MODEL, model.clone());
        let load = tevot_serve::loadgen::LoadConfig {
            addr: server.local_addr().to_string(),
            requests: scale.serve_requests,
            connections: 4,
            transitions: 4,
            model: tevot_serve::DEFAULT_MODEL.into(),
            dfs: false,
        };
        let outcome = tevot_serve::loadgen::run(&load);
        server.shutdown();
        assert_eq!(
            (outcome.shed, outcome.errors),
            (0, 0),
            "loopback load run must be shed- and error-free"
        );
        report.push("serve.qps", outcome.qps, "req/s", true);
        report.push("serve.p99_us", outcome.p99_us, "us", false);
        model
    };

    // Closed-loop clock-controller decision rate: the `tevot dfs` /
    // `POST /dfs` hot path — one forest inference plus guardband
    // arithmetic plus the PI policy update per cycle — on the serve
    // stage's model.
    {
        let _span = tevot_obs::span!("bench.dfs");
        let fu = scale.fus[0];
        let work = random_workload(fu, scale.test_vectors.max(2), scale.seed + 23);
        let ops = work.operands();
        let policy = tevot_dfs::GuardbandPolicy::Feedback(tevot_dfs::FeedbackConfig::default());
        let mut controller = tevot_dfs::ClockController::new(policy);
        let t0 = Instant::now();
        let mut total_t_clk = 0u64;
        for t in 1..ops.len() {
            let rec = controller.recommend(&dfs_model, cond, ops[t], ops[t - 1]);
            total_t_clk += rec.t_clk_ps;
            // Deterministic occasional "errors" keep the feedback-path
            // update live in the measurement.
            controller.observe(rec.t_clk_ps % 97 == 0);
        }
        let dfs_s = t0.elapsed().as_secs_f64();
        assert!(total_t_clk > 0, "controller recommended no clock mass");
        report.push("dfs.decisions_per_s", (ops.len() - 1) as f64 / dfs_s, "decisions/s", true);
    }

    // Watch hot paths in isolation: the per-tick cost of sampling every
    // registered metric into the ring store, and the Prometheus text
    // exposition (what a scraper hits on every poll).
    {
        let _span = tevot_obs::span!("bench.watch");
        let store = tevot_obs::watch::TimeSeriesStore::new(1, 600);
        let base = tevot_obs::watch::wall_ms();
        let n = 2000u64;
        let t0 = Instant::now();
        for i in 0..n {
            store.sample_registry(base + i, &[("bench.gauge", i as f64)]);
        }
        let sample_s = t0.elapsed().as_secs_f64();
        report.push("watch.sample_overhead_ns", sample_s * 1e9 / n as f64, "ns", false);

        let n = 500u64;
        let t0 = Instant::now();
        let mut rendered = 0usize;
        for _ in 0..n {
            rendered += tevot_obs::prom::render().len();
        }
        let expose_s = t0.elapsed().as_secs_f64();
        assert!(rendered > 0, "exposition must render something");
        report.push("watch.expose_per_s", n as f64 / expose_s, "renders/s", true);
    }

    // Statistical-profiler hot path in isolation: one sampler tick
    // (snapshot every live span slot, charge the elapsed time). This is
    // the entire cost the sampler thread pays per period, so it bounds
    // the profiler's overhead at any sampling rate.
    {
        let _span = tevot_obs::span!("bench.prof");
        let was_enabled = tevot_obs::stacks::enabled();
        tevot_obs::stacks::enable();
        let _probe = tevot_obs::span!("bench.prof_probe");
        let mut core = tevot_prof::SamplerCore::new();
        let n = 2000u64;
        let t0 = Instant::now();
        for i in 0..=n {
            let paths = tevot_obs::stacks::sample_paths();
            core.tick(u128::from(i) * 1_000, &paths);
        }
        let sample_s = t0.elapsed().as_secs_f64();
        assert!(core.total_ns() > 0, "sampler must observe the probe span");
        if !was_enabled {
            tevot_obs::stacks::disable();
        }
        report.push("prof.sample_overhead_ns", sample_s * 1e9 / n as f64, "ns", false);
    }

    report.push("suite.wall_s", suite_t0.elapsed().as_secs_f64(), "s", false);

    // Attach the run's per-span self times so bench_compare can show
    // *where* the time moved when a metric regresses.
    let snapshot = tevot_obs::report::Snapshot::capture();
    let self_ns = snapshot.self_times_ns();
    report.profile = snapshot
        .spans
        .iter()
        .zip(&self_ns)
        .map(|((path, _), &ns)| (path.clone(), ns as f64 / 1e6))
        .collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_and_standard_scales_track_the_same_metric_names() {
        // The gate depends on name stability across scales; check it
        // structurally (4 per-FU metrics x 4 FUs + 3 globals) without
        // running the suite.
        let tiny = SuiteScale::tiny();
        let std = SuiteScale::standard();
        assert_eq!(tiny.fus, std.fus);
        assert!(tiny.train_vectors < std.train_vectors);
    }
}
