//! Self-contained SVG flamegraph rendering, zero dependencies.
//!
//! Layout follows the classic flamegraph convention: x-extent is a
//! frame's share of total weight, depth grows upward from the root row
//! at the bottom. Every frame carries a `<title>` tooltip with its full
//! path, weight, and percentage, so the SVG is explorable in any
//! browser without scripts. Colors are a deterministic hash of the
//! frame name over a warm palette — equal names share a hue across
//! renders and machines.

use std::collections::BTreeMap;

use crate::folded::Profile;

/// Rendered image width in CSS pixels.
const IMAGE_WIDTH: f64 = 1200.0;
/// Height of one frame row.
const ROW_HEIGHT: f64 = 17.0;
/// Vertical padding above the deepest row (title space).
const TOP_PAD: f64 = 40.0;
/// Frames narrower than this many pixels get no visible label.
const MIN_LABEL_WIDTH: f64 = 35.0;
/// Approximate glyph advance of the embedded monospace font at 11 px.
const GLYPH_WIDTH: f64 = 6.6;

/// One node of the merged frame tree.
#[derive(Debug, Default)]
struct Node {
    /// Weight of stacks ending at or passing through this frame.
    total: u64,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn insert(&mut self, frames: &[String], weight: u64) {
        self.total += weight;
        if let Some((head, rest)) = frames.split_first() {
            self.children.entry(head.clone()).or_default().insert(rest, weight);
        }
    }

    fn depth(&self) -> usize {
        1 + self.children.values().map(Node::depth).max().unwrap_or(0)
    }
}

/// FNV-1a over the frame name; drives the deterministic palette.
fn fnv1a(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A warm flame color (red→orange→yellow band) keyed by name hash.
fn color(name: &str) -> String {
    let hash = fnv1a(name);
    let r = 205 + (hash % 50) as u32; // 205..255
    let g = 60 + ((hash >> 8) % 130) as u32; // 60..190
    let b = ((hash >> 16) % 55) as u32; // 0..55
    format!("rgb({r},{g},{b})")
}

fn xml_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    out
}

/// Renders `profile` as a standalone SVG document string.
///
/// An empty profile still renders a valid SVG containing a note to that
/// effect, so pipelines can always write the file.
pub fn render_svg(profile: &Profile, title: &str) -> String {
    let mut root = Node::default();
    for (frames, weight) in profile.iter() {
        root.insert(frames, weight);
    }
    let depth = if root.children.is_empty() { 1 } else { root.depth() - 1 };
    let height = TOP_PAD + depth as f64 * ROW_HEIGHT + 10.0;
    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{IMAGE_WIDTH}\" \
         height=\"{height}\" viewBox=\"0 0 {IMAGE_WIDTH} {height}\" \
         font-family=\"monospace\" font-size=\"11\">\n"
    ));
    svg.push_str(&format!(
        "<rect x=\"0\" y=\"0\" width=\"{IMAGE_WIDTH}\" height=\"{height}\" \
         fill=\"#f8f8f8\"/>\n"
    ));
    svg.push_str(&format!(
        "<text x=\"{}\" y=\"22\" text-anchor=\"middle\" font-size=\"15\">{}</text>\n",
        IMAGE_WIDTH / 2.0,
        xml_escape(title)
    ));
    if root.children.is_empty() {
        svg.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">(empty profile)</text>\n",
            IMAGE_WIDTH / 2.0,
            TOP_PAD + ROW_HEIGHT
        ));
        svg.push_str("</svg>\n");
        return svg;
    }
    let total = root.total.max(1);
    // Depth-first emit: each child occupies a slice of its parent's
    // x-extent proportional to weight, at the row above.
    let mut stack: Vec<(&Node, String, f64, usize)> = Vec::new();
    let mut x = 0.0;
    for (name, node) in &root.children {
        let width = node.total as f64 / total as f64 * IMAGE_WIDTH;
        stack.push((node, name.clone(), x, 0));
        x += width;
    }
    // Reverse so the leftmost frame is emitted first (cosmetic only).
    stack.reverse();
    while let Some((node, path, x0, level)) = stack.pop() {
        let width = node.total as f64 / total as f64 * IMAGE_WIDTH;
        let y = height - 10.0 - (level + 1) as f64 * ROW_HEIGHT;
        let name = path.rsplit('/').next().unwrap_or(&path);
        let pct = node.total as f64 / total as f64 * 100.0;
        svg.push_str(&format!(
            "<g><title>{} ({} ns, {pct:.2}%)</title>\
             <rect x=\"{x0:.2}\" y=\"{y:.2}\" width=\"{width:.2}\" \
             height=\"{:.2}\" fill=\"{}\" stroke=\"#f8f8f8\" \
             stroke-width=\"0.5\"/>",
            xml_escape(&path),
            node.total,
            ROW_HEIGHT - 1.0,
            color(name),
        ));
        if width >= MIN_LABEL_WIDTH {
            let fit = ((width - 6.0) / GLYPH_WIDTH) as usize;
            let label: String = if name.len() > fit {
                name.chars().take(fit.saturating_sub(2)).chain("..".chars()).collect()
            } else {
                name.to_string()
            };
            svg.push_str(&format!(
                "<text x=\"{:.2}\" y=\"{:.2}\">{}</text>",
                x0 + 3.0,
                y + ROW_HEIGHT - 5.0,
                xml_escape(&label)
            ));
        }
        svg.push_str("</g>\n");
        let mut cx = x0;
        for (child_name, child) in &node.children {
            stack.push((child, format!("{path}/{child_name}"), cx, level + 1));
            cx += child.total as f64 / total as f64 * IMAGE_WIDTH;
        }
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> Profile {
        let mut p = Profile::new();
        p.add(&["sweep", "dta", "sim"], 700);
        p.add(&["sweep", "dta"], 200);
        p.add(&["train"], 100);
        p
    }

    #[test]
    fn svg_is_well_formed_and_names_every_frame() {
        let svg = render_svg(&profile(), "test profile");
        assert!(svg.starts_with("<svg xmlns=\"http://www.w3.org/2000/svg\""));
        assert!(svg.trim_end().ends_with("</svg>"));
        for frame in ["sweep", "dta", "sim", "train"] {
            assert!(svg.contains(&format!(">{frame}")), "frame {frame} missing: {svg}");
        }
        assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
        assert_eq!(svg.matches("<rect").count(), 5, "4 frames + background");
    }

    #[test]
    fn widths_are_proportional_to_weight() {
        let svg = render_svg(&profile(), "t");
        // sweep holds 900 of 1000 → 90% of 1200 px = 1080 px.
        assert!(svg.contains("width=\"1080.00\""), "{svg}");
        // train holds 100 of 1000 → 120 px.
        assert!(svg.contains("width=\"120.00\""), "{svg}");
    }

    #[test]
    fn empty_profile_renders_placeholder_svg() {
        let svg = render_svg(&Profile::new(), "empty");
        assert!(svg.contains("(empty profile)"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn frame_titles_are_xml_escaped() {
        let mut p = Profile::new();
        p.add(&["a<b>&\"c\""], 10);
        let svg = render_svg(&p, "esc");
        assert!(svg.contains("a&lt;b&gt;&amp;&quot;c&quot;"), "{svg}");
        assert!(!svg.contains("a<b>"), "{svg}");
    }

    #[test]
    fn colors_are_deterministic_per_name() {
        assert_eq!(color("sim"), color("sim"));
        assert_ne!(color("sim"), color("train"));
    }
}
