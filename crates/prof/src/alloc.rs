//! `TevotAlloc`: a global-allocator wrapper attributing heap traffic to
//! span paths, behind a feature-free runtime toggle.
//!
//! Install it in a binary with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: tevot_prof::TevotAlloc = tevot_prof::TevotAlloc;
//! ```
//!
//! and flip it on at runtime with [`enable`] (the `--profile-alloc`
//! CLI flag). While disabled — the default — every allocation pays
//! exactly one relaxed atomic load on top of the system allocator.
//! While enabled, each allocation bumps the global `alloc.allocations`
//! / `alloc.bytes` counters and a fixed-capacity per-span-path bucket
//! selected by [`tevot_obs::stacks::current_path_id`] — a
//! const-initialized thread-local read, so the accounting path never
//! allocates, locks, or recurses into itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use tevot_obs::metrics::{ALLOC_ALLOCATIONS, ALLOC_BYTES};

/// Per-path bucket capacity. Path ids beyond the range share the last
/// bucket (reported as the `(overflow)` path).
const PATH_BUCKETS: usize = 512;

static ENABLED: AtomicBool = AtomicBool::new(false);

static PATH_ALLOCS: [AtomicU64; PATH_BUCKETS] = [const { AtomicU64::new(0) }; PATH_BUCKETS];
static PATH_BYTES: [AtomicU64; PATH_BUCKETS] = [const { AtomicU64::new(0) }; PATH_BUCKETS];

/// Turns allocation profiling on.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns allocation profiling off (counters keep their values).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether allocation profiling is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes the per-path buckets and the global `alloc.*` counters
/// (test isolation).
pub fn reset() {
    for bucket in PATH_ALLOCS.iter().chain(PATH_BYTES.iter()) {
        bucket.store(0, Ordering::Relaxed);
    }
    ALLOC_ALLOCATIONS.reset();
    ALLOC_BYTES.reset();
}

/// Per-span-path allocation totals: `(path, allocations, bytes)`,
/// descending by bytes. Bucket 0 (allocations outside any span) reports
/// as `(no span)`; the shared overflow bucket as `(overflow)`.
pub fn by_path() -> Vec<(String, u64, u64)> {
    let mut rows = Vec::new();
    for (id, (allocs, bytes)) in PATH_ALLOCS.iter().zip(&PATH_BYTES).enumerate() {
        let (allocs, bytes) = (allocs.load(Ordering::Relaxed), bytes.load(Ordering::Relaxed));
        if allocs == 0 && bytes == 0 {
            continue;
        }
        let path = if id == 0 {
            "(no span)".to_string()
        } else if id == PATH_BUCKETS - 1 {
            "(overflow)".to_string()
        } else {
            tevot_obs::stacks::path_for_id(id).unwrap_or("(unknown)").to_string()
        };
        rows.push((path, allocs, bytes));
    }
    rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    rows
}

/// The wrapping allocator; see the module docs for installation.
#[derive(Debug, Default, Clone, Copy)]
pub struct TevotAlloc;

impl TevotAlloc {
    #[inline]
    fn record(size: usize) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        ALLOC_ALLOCATIONS.incr();
        ALLOC_BYTES.add(size as u64);
        let bucket = tevot_obs::stacks::current_path_id().min(PATH_BUCKETS - 1);
        PATH_ALLOCS[bucket].fetch_add(1, Ordering::Relaxed);
        PATH_BYTES[bucket].fetch_add(size as u64, Ordering::Relaxed);
    }
}

// SAFETY: pure pass-through to `System`; the accounting touches only
// lock-free atomics and a const-initialized thread-local, so it cannot
// re-enter the allocator or violate any GlobalAlloc contract.
unsafe impl GlobalAlloc for TevotAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        TevotAlloc::record(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        TevotAlloc::record(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        TevotAlloc::record(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}
