//! The statistical sampler: periodically snapshots every thread's
//! published span path ([`tevot_obs::stacks`]) and charges the elapsed
//! interval to it.
//!
//! Split into a deterministic core and a thread driver so the weighting
//! arithmetic is unit-testable without real time: [`SamplerCore::tick`]
//! takes an explicit clock reading and the set of observed paths; the
//! interval since the previous tick is charged to *each* observed
//! thread (per-thread weights sum to per-thread elapsed wall time).
//!
//! Bias/overhead notes (see DESIGN.md §15): the default period is a
//! prime 997 µs so periodic workloads don't phase-lock with the
//! sampler; a sample costs one registry lock plus one relaxed load per
//! live thread, so the profiled threads themselves pay only the span
//! enter/exit publish cost.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::folded::Profile;

/// Default sampling period: ~1 kHz, deliberately prime in microseconds.
pub const DEFAULT_PERIOD: Duration = Duration::from_micros(997);

/// Deterministic sampling state: a last-clock watermark plus weighted
/// path counts (nanoseconds attributed to each span path).
#[derive(Debug, Default)]
pub struct SamplerCore {
    last_ns: Option<u128>,
    counts: std::collections::BTreeMap<String, u64>,
}

impl SamplerCore {
    /// An empty core; the first [`tick`](SamplerCore::tick) only sets
    /// the clock watermark.
    pub fn new() -> SamplerCore {
        SamplerCore::default()
    }

    /// Observes the current thread positions at clock reading `now_ns`,
    /// charging `now_ns - previous` to every observed path.
    pub fn tick<S: AsRef<str>>(&mut self, now_ns: u128, paths: &[S]) {
        let Some(last) = self.last_ns.replace(now_ns) else { return };
        let weight = now_ns.saturating_sub(last).min(u64::MAX as u128) as u64;
        if weight == 0 {
            return;
        }
        for path in paths {
            *self.counts.entry(path.as_ref().to_string()).or_insert(0) += weight;
        }
    }

    /// Total weight attributed so far, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The weighted counts as a collapsed-stack [`Profile`] (span paths
    /// split into frames on `/`).
    pub fn profile(&self) -> Profile {
        let mut profile = Profile::new();
        for (path, &weight) in &self.counts {
            profile.add_span_path(path, weight);
        }
        profile
    }
}

/// A running sampler thread. Dropping without [`Sampler::stop`] leaves
/// the thread running until process exit (harmless: it only samples).
#[derive(Debug)]
pub struct Sampler {
    core: Arc<Mutex<SamplerCore>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Enables stack-slot publishing and starts a sampler thread with
    /// the given period.
    pub fn start(period: Duration) -> Sampler {
        tevot_obs::stacks::enable();
        let core = Arc::new(Mutex::new(SamplerCore::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let thread_core = Arc::clone(&core);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("tevot-prof-sampler".into())
            .spawn(move || {
                let epoch = Instant::now();
                while !thread_stop.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    let paths = tevot_obs::stacks::sample_paths();
                    tevot_obs::metrics::PROF_SAMPLES.incr();
                    let mut core = thread_core.lock().unwrap_or_else(|e| e.into_inner());
                    core.tick(epoch.elapsed().as_nanos(), &paths);
                }
            })
            .expect("spawn tevot-prof-sampler thread");
        Sampler { core, stop, handle: Some(handle) }
    }

    /// A point-in-time copy of the accumulated profile.
    pub fn profile(&self) -> Profile {
        self.core.lock().unwrap_or_else(|e| e.into_inner()).profile()
    }

    /// Stops the sampler thread and returns the final profile. Leaves
    /// stack-slot publishing enabled (another sampler may be running).
    pub fn stop(mut self) -> Profile {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.profile()
    }
}

/// The process-wide sampler used by `--profile-folded` and the serve
/// `/profile` endpoint. Started at most once; later calls are no-ops.
static GLOBAL: OnceLock<Sampler> = OnceLock::new();

/// Starts the global sampler (idempotent) with the default period.
pub fn start_global() {
    GLOBAL.get_or_init(|| Sampler::start(DEFAULT_PERIOD));
}

/// Whether the global sampler is running.
pub fn global_running() -> bool {
    GLOBAL.get().is_some()
}

/// Snapshot of the global sampler's profile, if it was ever started.
pub fn global_profile() -> Option<Profile> {
    GLOBAL.get().map(Sampler::profile)
}

/// RAII wrapper for `--profile-folded <path>`: starts the global
/// sampler, and on drop writes the folded profile to `path`.
#[derive(Debug)]
pub struct FoldedGuard {
    path: std::path::PathBuf,
}

impl FoldedGuard {
    /// Starts global sampling; the profile lands in `path` on drop.
    pub fn start(path: std::path::PathBuf) -> FoldedGuard {
        start_global();
        FoldedGuard { path }
    }
}

impl Drop for FoldedGuard {
    fn drop(&mut self) {
        let Some(profile) = global_profile() else { return };
        match std::fs::write(&self.path, profile.render()) {
            Ok(()) => tevot_obs::info!(
                "folded profile ({} stacks, {:.1} ms sampled) written to {}",
                profile.len(),
                profile.total() as f64 / 1e6,
                self.path.display()
            ),
            Err(e) => {
                tevot_obs::error!("cannot write folded profile to {}: {e}", self.path.display())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_elapsed_time_per_thread() {
        let mut core = SamplerCore::new();
        core.tick(1_000, &["a"]); // watermark only
        core.tick(1_010, &["a"]);
        core.tick(1_025, &["a/b"]);
        core.tick(1_040, &["a/b"]);
        // One thread observed on every tick: total weight == elapsed
        // since the first tick.
        assert_eq!(core.total_ns(), 40);
        let folded = core.profile().render();
        assert_eq!(folded, "a 10\na;b 30\n");
    }

    #[test]
    fn idle_ticks_and_clock_stalls_charge_nothing() {
        let mut core = SamplerCore::new();
        core.tick(100, &[] as &[&str]);
        core.tick(200, &[] as &[&str]); // idle: nothing observed
        core.tick(200, &["x"]); // zero-width interval
        core.tick(150, &["x"]); // clock went backwards: saturates to 0
        assert_eq!(core.total_ns(), 0);
        assert!(core.profile().is_empty());
    }

    #[test]
    fn concurrent_threads_each_get_full_weight() {
        let mut core = SamplerCore::new();
        core.tick(0, &["a", "b"]);
        core.tick(10, &["a", "b"]);
        // Two threads sampled over 10 ns → 20 ns total attribution
        // (profile weights are per-thread wall time, like any profiler
        // summing across threads).
        assert_eq!(core.total_ns(), 20);
    }

    #[test]
    fn sampler_thread_observes_a_busy_span() {
        let sampler = Sampler::start(Duration::from_micros(200));
        {
            let _g = tevot_obs::span!("prof_test_busy");
            std::thread::sleep(Duration::from_millis(30));
        }
        let profile = sampler.stop();
        let folded = profile.render();
        assert!(folded.contains("prof_test_busy"), "sampled: {folded:?}");
    }
}
