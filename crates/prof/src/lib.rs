//! `tevot-prof`: a zero-dependency statistical profiler for the TEVoT
//! pipeline.
//!
//! The pipeline's spans already tell every thread where it is
//! ([`tevot_obs::stacks`] publishes the current span path into a
//! lock-light per-thread slot); this crate adds the consumer side:
//!
//! - [`sampler`] — a sampler thread snapshots every slot at a fixed
//!   rate and charges elapsed wall time to the observed span paths. No
//!   signal handlers, no native unwinding: fully portable statistical
//!   profiling whose only cost to profiled threads is the span
//!   enter/exit publish.
//! - [`folded`] — the weighted stacks as Brendan-Gregg collapsed-stack
//!   text (`frame;frame count`), with separator escaping so arbitrary
//!   span names round-trip.
//! - [`flame`] — a self-contained SVG flamegraph renderer (`tevot
//!   flame`).
//! - [`alloc`] — [`TevotAlloc`], a global-allocator wrapper counting
//!   allocations/bytes per span path behind a runtime toggle, surfaced
//!   as the `alloc.*` metrics.
//!
//! Wall-clock *self time* (total minus direct children) is computed by
//! the reporter in `tevot-obs` from exact span totals; the sampled
//! profile complements it by splitting time *between* span boundaries
//! statistically. See DESIGN.md §15 for the bias/overhead analysis.

#![warn(missing_docs)]

pub mod alloc;
pub mod flame;
pub mod folded;
pub mod sampler;

pub use alloc::TevotAlloc;
pub use folded::Profile;
pub use sampler::{FoldedGuard, Sampler, SamplerCore};
