//! The collapsed-stack ("folded") profile format.
//!
//! One line per distinct stack, Brendan Gregg's convention:
//!
//! ```text
//! frame;frame;frame count
//! ```
//!
//! The separator characters (`;` between frames, the final space before
//! the count) and `%` are percent-escaped inside frame names (`%3B`,
//! `%20`, `%25`, plus `%0A` for newlines), so any span name round-trips:
//! render → parse → render is the identity. Lines render sorted by
//! stack, making the output deterministic and diff-friendly, and
//! compatible with the wider flamegraph toolchain.

use std::collections::BTreeMap;

/// A weighted multiset of stacks. Weights are opaque counts — the
/// sampler stores nanoseconds, other producers may store samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    counts: BTreeMap<Vec<String>, u64>,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Adds `weight` to the stack `frames` (root first). Empty stacks
    /// and zero weights are ignored.
    pub fn add<S: AsRef<str>>(&mut self, frames: &[S], weight: u64) {
        if frames.is_empty() || weight == 0 {
            return;
        }
        let key: Vec<String> = frames.iter().map(|f| f.as_ref().to_string()).collect();
        *self.counts.entry(key).or_insert(0) += weight;
    }

    /// Adds a slash-separated span path (the [`tevot_obs::span`] path
    /// convention) by splitting it into frames.
    pub fn add_span_path(&mut self, path: &str, weight: u64) {
        let frames: Vec<&str> = path.split(tevot_obs::span::PATH_SEPARATOR).collect();
        self.add(&frames, weight);
    }

    /// Folds another profile into this one.
    pub fn merge(&mut self, other: &Profile) {
        for (frames, weight) in &other.counts {
            *self.counts.entry(frames.clone()).or_insert(0) += weight;
        }
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct stacks.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the profile holds no stacks at all.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates `(stack, weight)` in sorted stack order.
    pub fn iter(&self) -> impl Iterator<Item = (&[String], u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_slice(), v))
    }

    /// Renders the folded text form, one sorted line per stack.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (frames, weight) in &self.counts {
            for (i, frame) in frames.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                escape_into(&mut out, frame);
            }
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses folded text produced by [`Profile::render`] (or any
    /// collapsed-stack tool). Blank lines are skipped; weights of equal
    /// stacks accumulate.
    ///
    /// # Errors
    ///
    /// Returns `"line N: ..."` describing the first malformed line
    /// (missing count, bad integer, empty stack, bad escape).
    pub fn parse(text: &str) -> Result<Profile, String> {
        let mut profile = Profile::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let err = |message: &str| format!("line {}: {message}", i + 1);
            let (stack, count) =
                line.rsplit_once(' ').ok_or_else(|| err("missing ' count' suffix"))?;
            let weight: u64 = count.parse().map_err(|_| err(&format!("bad count {count:?}")))?;
            if stack.is_empty() {
                return Err(err("empty stack"));
            }
            let frames = stack
                .split(';')
                .map(unescape)
                .collect::<Result<Vec<String>, String>>()
                .map_err(|e| err(&e))?;
            if frames.iter().any(String::is_empty) {
                return Err(err("empty frame name"));
            }
            profile.add(&frames, weight);
        }
        Ok(profile)
    }
}

fn escape_into(out: &mut String, frame: &str) {
    for ch in frame.chars() {
        match ch {
            '%' => out.push_str("%25"),
            ';' => out.push_str("%3B"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            other => out.push(other),
        }
    }
}

fn unescape(frame: &str) -> Result<String, String> {
    let mut out = String::with_capacity(frame.len());
    let mut chars = frame.chars();
    while let Some(ch) = chars.next() {
        if ch != '%' {
            out.push(ch);
            continue;
        }
        let pair: String = chars.by_ref().take(2).collect();
        match pair.as_str() {
            "25" => out.push('%'),
            "3B" | "3b" => out.push(';'),
            "20" => out.push(' '),
            "0A" | "0a" => out.push('\n'),
            other => return Err(format!("bad escape %{other}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_sorted_and_parse_round_trips() {
        let mut p = Profile::new();
        p.add(&["zeta", "inner"], 7);
        p.add(&["alpha"], 3);
        p.add(&["alpha", "beta"], 10);
        let text = p.render();
        assert_eq!(text, "alpha 3\nalpha;beta 10\nzeta;inner 7\n");
        assert_eq!(Profile::parse(&text).unwrap(), p);
    }

    #[test]
    fn separators_in_frame_names_are_escaped() {
        let mut p = Profile::new();
        p.add(&["a b;c", "d%e"], 2);
        let text = p.render();
        assert_eq!(text, "a%20b%3Bc;d%25e 2\n");
        let back = Profile::parse(&text).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn span_paths_split_on_slash() {
        let mut p = Profile::new();
        p.add_span_path("sweep/dta/sim", 5);
        let (stack, weight) = p.iter().next().unwrap();
        assert_eq!(stack, ["sweep", "dta", "sim"]);
        assert_eq!(weight, 5);
    }

    #[test]
    fn parse_rejects_malformed_lines_with_position() {
        assert!(Profile::parse("no-count-here").unwrap_err().contains("line 1"));
        assert!(Profile::parse("a;b nope").unwrap_err().contains("bad count"));
        assert!(Profile::parse(" 5").unwrap_err().contains("empty stack"));
        assert!(Profile::parse("a;;b 5").unwrap_err().contains("empty frame"));
        assert!(Profile::parse("a%ZZ 5").unwrap_err().contains("bad escape"));
    }

    #[test]
    fn merge_accumulates_equal_stacks() {
        let mut a = Profile::new();
        a.add(&["x"], 1);
        let mut b = Profile::new();
        b.add(&["x"], 2);
        b.add(&["y"], 3);
        a.merge(&b);
        assert_eq!(a.total(), 6);
        assert_eq!(a.len(), 2);
    }
}
