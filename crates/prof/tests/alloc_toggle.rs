//! Proof that `TevotAlloc` is free when disabled, in the same spirit as
//! the allocator-counting harness in `tevot-obs`'s trace tests: this
//! binary installs the wrapper as its real global allocator, hammers the
//! heap with the toggle off, and asserts the accounting observed
//! *nothing* — the disabled path is one relaxed load, no counters, no
//! buckets. Then the toggle flips on and the same traffic must be fully
//! attributed, including per-span-path buckets.
//!
//! Must stay a dedicated binary with exactly one `#[test]`: a sibling
//! test allocating concurrently would race the global counters.

use tevot_obs::metrics::{ALLOC_ALLOCATIONS, ALLOC_BYTES};
use tevot_prof::alloc;

#[global_allocator]
static ALLOC: tevot_prof::TevotAlloc = tevot_prof::TevotAlloc;

#[test]
fn disabled_allocator_observes_nothing_and_enabled_attributes() {
    // Warm up outside the probe window (lazy TLS, registry init).
    {
        let _g = tevot_obs::span!("alloc_toggle_warmup");
        let warmup: Vec<u8> = vec![0; 64];
        drop(warmup);
    }
    alloc::reset();
    assert!(!alloc::enabled(), "toggle must start off");

    // Probe window: a million allocations with profiling disabled.
    for i in 0..1_000_000u64 {
        let v: Vec<u8> = Vec::with_capacity(16 + (i % 3) as usize);
        std::hint::black_box(&v);
    }
    assert_eq!(ALLOC_ALLOCATIONS.get(), 0, "disabled toggle must observe no allocations");
    assert_eq!(ALLOC_BYTES.get(), 0);
    assert!(alloc::by_path().is_empty());

    // Counterfactual: the same traffic with the toggle on is counted
    // and attributed to the enclosing span path.
    tevot_obs::stacks::enable();
    alloc::enable();
    {
        let _outer = tevot_obs::span!("alloc_toggle");
        let _inner = tevot_obs::span!("probe");
        for _ in 0..1_000u64 {
            let v: Vec<u8> = Vec::with_capacity(32);
            std::hint::black_box(&v);
        }
    }
    alloc::disable();
    tevot_obs::stacks::disable();

    assert!(ALLOC_ALLOCATIONS.get() >= 1_000, "got {}", ALLOC_ALLOCATIONS.get());
    assert!(ALLOC_BYTES.get() >= 32_000, "got {}", ALLOC_BYTES.get());
    let by_path = alloc::by_path();
    let probe = by_path
        .iter()
        .find(|(path, _, _)| path == "alloc_toggle/probe")
        .unwrap_or_else(|| panic!("probe span missing from {by_path:?}"));
    assert!(probe.1 >= 1_000, "allocations attributed to the span: {by_path:?}");
    assert!(probe.2 >= 32_000, "bytes attributed to the span: {by_path:?}");
}
