//! Property tests for the collapsed-stack codec: rendering any profile
//! — including frames containing spaces, semicolons, percent signs and
//! newlines — parses back to the same profile, and render → parse →
//! render is the identity on the text.

use proptest::prelude::*;
use tevot_prof::Profile;

/// Frame names over a hostile palette: separator characters mixed with
/// ordinary text, 1..=12 chars.
fn frame() -> impl Strategy<Value = String> {
    let palette = ['a', 'Z', '9', '.', '_', ' ', ';', '%', '\n', '/'];
    prop::collection::vec(0usize..palette.len(), 1..12)
        .prop_map(move |picks| picks.into_iter().map(|i| palette[i]).collect())
}

fn stacks() -> impl Strategy<Value = Vec<(Vec<String>, u64)>> {
    prop::collection::vec((prop::collection::vec(frame(), 1..5), 1u64..1_000_000), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// render → parse recovers the profile exactly; parsing the render
    /// of the parse reproduces the same text (full round-trip identity).
    #[test]
    fn render_parse_render_is_identity(raw in stacks()) {
        let mut profile = Profile::new();
        for (frames, weight) in &raw {
            profile.add(frames, *weight);
        }
        let text = profile.render();
        let parsed = Profile::parse(&text).expect("rendered profile must parse");
        prop_assert_eq!(&parsed, &profile);
        prop_assert_eq!(parsed.render(), text);
    }

    /// Total weight survives the text round trip.
    #[test]
    fn totals_are_preserved(raw in stacks()) {
        let mut profile = Profile::new();
        for (frames, weight) in &raw {
            profile.add(frames, *weight);
        }
        let parsed = Profile::parse(&profile.render()).unwrap();
        prop_assert_eq!(parsed.total(), profile.total());
        prop_assert_eq!(parsed.len(), profile.len());
    }
}
