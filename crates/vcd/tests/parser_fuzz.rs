//! Fuzzing the VCD parser: whatever bytes it is fed — arbitrary garbage,
//! truncated dumps, byte-flipped dumps — it must return `ParseVcdError`
//! or a parsed document, never panic.

use proptest::prelude::*;
use tevot_vcd::{parse_vcd, VcdWriter};

/// A structurally valid dump produced by the workspace writer, used as
/// the seed for truncation and mutation.
fn valid_dump(nsignals: usize, nchanges: usize) -> String {
    let mut w = VcdWriter::new("fuzz");
    let ids: Vec<_> = (0..nsignals).map(|i| w.declare_wire(format!("s{i}"))).collect();
    w.begin_dump(&vec![false; nsignals]);
    for c in 0..nchanges {
        w.change(10 + c as u64, ids[c % nsignals], c % 2 == 0);
    }
    w.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Valid UTF-8 slices parse as-is; the rest go through the lossy
        // decoder, which is how a caller would feed a binary file in.
        match std::str::from_utf8(&bytes) {
            Ok(text) => drop(parse_vcd(text)),
            Err(_) => drop(parse_vcd(&String::from_utf8_lossy(&bytes))),
        }
    }

    #[test]
    fn truncated_dumps_never_panic(
        nsignals in 1usize..12,
        nchanges in 0usize..40,
        frac in 0.0f64..1.0,
    ) {
        let dump = valid_dump(nsignals, nchanges);
        let mut cut = (dump.len() as f64 * frac) as usize;
        while !dump.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = parse_vcd(&dump[..cut]);
    }

    #[test]
    fn byte_flipped_dumps_never_panic(
        nsignals in 1usize..8,
        pos_frac in 0.0f64..1.0,
        byte in any::<u8>(),
    ) {
        let mut bytes = valid_dump(nsignals, 10).into_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = byte;
        let _ = parse_vcd(&String::from_utf8_lossy(&bytes));
    }
}
