//! Value change dump (VCD) tooling for the TEVoT (DAC 2020) reproduction.
//!
//! The paper's dynamic timing analysis rests on VCD files: gate-level
//! simulation (ModelSim) dumps the switching activity of the circuit's
//! output nets, and a script computes each cycle's *dynamic delay* as the
//! time of the last toggle minus the clock edge. This crate provides all
//! three pieces in library form:
//!
//! * [`VcdWriter`] — streaming writer for standard scalar VCD;
//! * [`parse_vcd`] / [`Vcd`] — parser for the same subset;
//! * [`dta`] — the per-cycle dynamic-delay extraction.
//!
//! # Examples
//!
//! ```
//! use tevot_vcd::{dta, parse_vcd, VcdWriter};
//!
//! let mut w = VcdWriter::new("tb");
//! let q = w.declare_wire("out_0");
//! w.begin_dump(&[false]);
//! w.change(420, q, true);
//! let vcd = parse_vcd(&w.finish())?;
//! let result = dta::dynamic_delays(&vcd, 1_000, 1, |s| s.starts_with("out_"));
//! assert_eq!(result.delays_ps(), &[420]);
//! # Ok::<(), tevot_vcd::ParseVcdError>(())
//! ```

#![warn(missing_docs)]

pub mod dta;
mod parser;
mod writer;

pub use parser::{parse_vcd, Change, ParseVcdError, Vcd};
pub use writer::{SignalId, VcdWriter};
