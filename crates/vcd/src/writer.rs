//! Streaming VCD (value change dump) writer.

use std::fmt::Write as _;

/// Handle to a declared VCD signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(usize);

/// Writes a VCD document incrementally.
///
/// The produced format is standard IEEE-1364 VCD: a header with a
/// timescale, `$var` declarations, and `#time` / value-change records. The
/// paper's flow dumps these from ModelSim; here the timing simulator dumps
/// them so the DTA extractor in [`crate::dta`] can recompute per-cycle
/// dynamic delays from the file alone.
///
/// # Examples
///
/// ```
/// use tevot_vcd::VcdWriter;
///
/// let mut w = VcdWriter::new("adder_tb");
/// let clk = w.declare_wire("clk");
/// let q = w.declare_wire("q");
/// w.begin_dump(&[false, false]);
/// w.change(100, clk, true);
/// w.change(140, q, true);
/// let text = w.finish();
/// assert!(text.contains("$timescale 1ps $end"));
/// ```
#[derive(Debug, Clone)]
pub struct VcdWriter {
    names: Vec<String>,
    body: String,
    header_done: bool,
    scope: String,
    last_time: Option<u64>,
}

impl VcdWriter {
    /// Creates a writer with a single module scope named `scope`.
    pub fn new(scope: impl Into<String>) -> Self {
        VcdWriter {
            names: Vec::new(),
            body: String::new(),
            header_done: false,
            scope: scope.into(),
            last_time: None,
        }
    }

    /// Declares a single-bit wire. All declarations must precede
    /// [`Self::begin_dump`].
    ///
    /// # Panics
    ///
    /// Panics if called after `begin_dump`.
    pub fn declare_wire(&mut self, name: impl Into<String>) -> SignalId {
        assert!(!self.header_done, "declare_wire after begin_dump");
        let id = SignalId(self.names.len());
        self.names.push(name.into());
        id
    }

    /// VCD identifier code for a signal (printable ASCII, multi-character
    /// for large indices).
    fn code(index: usize) -> String {
        // Base-94 using '!'..='~'.
        let mut n = index;
        let mut s = String::new();
        loop {
            s.push((b'!' + (n % 94) as u8) as char);
            n /= 94;
            if n == 0 {
                break;
            }
        }
        s
    }

    /// Emits the header and the `$dumpvars` section with the initial value
    /// of every declared signal.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len()` differs from the number of declared wires
    /// or if called twice.
    pub fn begin_dump(&mut self, initial: &[bool]) {
        assert!(!self.header_done, "begin_dump called twice");
        assert_eq!(initial.len(), self.names.len(), "initial values / declarations mismatch");
        let _ = writeln!(self.body, "$timescale 1ps $end");
        let _ = writeln!(self.body, "$scope module {} $end", self.scope);
        for (i, name) in self.names.iter().enumerate() {
            let _ = writeln!(self.body, "$var wire 1 {} {} $end", Self::code(i), name);
        }
        let _ = writeln!(self.body, "$upscope $end");
        let _ = writeln!(self.body, "$enddefinitions $end");
        let _ = writeln!(self.body, "$dumpvars");
        for (i, &v) in initial.iter().enumerate() {
            let _ = writeln!(self.body, "{}{}", v as u8, Self::code(i));
        }
        let _ = writeln!(self.body, "$end");
        self.header_done = true;
    }

    /// Records a value change at an absolute time in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::begin_dump`] or if `time` moves
    /// backwards.
    pub fn change(&mut self, time: u64, signal: SignalId, value: bool) {
        assert!(self.header_done, "change before begin_dump");
        if self.last_time != Some(time) {
            assert!(self.last_time.is_none_or(|t| t < time), "VCD time must be monotonic");
            let _ = writeln!(self.body, "#{time}");
            self.last_time = Some(time);
        }
        let _ = writeln!(self.body, "{}{}", value as u8, Self::code(signal.0));
    }

    /// Finishes the dump and returns the VCD text.
    pub fn finish(mut self) -> String {
        if !self.header_done {
            self.begin_dump(&[]);
        }
        self.body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_structure() {
        let mut w = VcdWriter::new("tb");
        let a = w.declare_wire("a");
        w.begin_dump(&[true]);
        w.change(5, a, false);
        let text = w.finish();
        assert!(text.contains("$scope module tb $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$dumpvars"));
        assert!(text.contains("#5\n0!"));
    }

    #[test]
    fn codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let c = VcdWriter::code(i);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c), "duplicate code for {i}");
        }
    }

    #[test]
    fn same_time_changes_share_timestamp() {
        let mut w = VcdWriter::new("tb");
        let a = w.declare_wire("a");
        let b = w.declare_wire("b");
        w.begin_dump(&[false, false]);
        w.change(10, a, true);
        w.change(10, b, true);
        let text = w.finish();
        assert_eq!(text.matches("#10").count(), 1);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn time_cannot_go_backwards() {
        let mut w = VcdWriter::new("tb");
        let a = w.declare_wire("a");
        w.begin_dump(&[false]);
        w.change(10, a, true);
        w.change(5, a, false);
    }
}
