//! VCD parsing.

use std::collections::HashMap;

/// One parsed value change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Change {
    /// Absolute time in the file's timescale units.
    pub time: u64,
    /// Index into [`Vcd::signals`].
    pub signal: usize,
    /// New value.
    pub value: bool,
}

/// A parsed value change dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vcd {
    timescale: String,
    signals: Vec<String>,
    initial: Vec<bool>,
    changes: Vec<Change>,
}

impl Vcd {
    /// The declared timescale string (e.g. `"1ps"`).
    pub fn timescale(&self) -> &str {
        &self.timescale
    }

    /// Declared signal names, in declaration order.
    pub fn signals(&self) -> &[String] {
        &self.signals
    }

    /// Index of the signal called `name`.
    pub fn signal_index(&self, name: &str) -> Option<usize> {
        self.signals.iter().position(|s| s == name)
    }

    /// Initial (`$dumpvars`) value of each signal.
    pub fn initial_values(&self) -> &[bool] {
        &self.initial
    }

    /// All value changes in file order (time-sorted by construction).
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }
}

/// An error produced while parsing a VCD document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVcdError {
    line: usize,
    message: String,
}

impl ParseVcdError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseVcdError { line, message: message.into() }
    }
}

impl std::fmt::Display for ParseVcdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid VCD at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseVcdError {}

/// Parses a VCD document (the single-bit scalar subset emitted by
/// [`crate::VcdWriter`] and by typical gate-level simulators).
///
/// # Errors
///
/// Returns [`ParseVcdError`] on malformed declarations, unknown identifier
/// codes, non-numeric timestamps, four-state (`x`/`z`) values, and vector
/// (`b.../r...`) value changes — the last two with dedicated messages
/// instead of the generic "unrecognized line".
pub fn parse_vcd(text: &str) -> Result<Vcd, ParseVcdError> {
    // Failpoint `vcd.parse`: the chaos harness injects a failure here to
    // prove callers survive an unparsable dump.
    if let Err(e) = tevot_resil::fail::eval("vcd.parse") {
        return Err(ParseVcdError::new(0, format!("injected failure: {e}")));
    }
    let mut timescale = String::from("1ps");
    let mut signals: Vec<String> = Vec::new();
    let mut by_code: HashMap<&str, usize> = HashMap::new();
    let mut initial: Vec<bool> = Vec::new();
    let mut changes = Vec::new();
    let mut time: u64 = 0;
    let mut in_dumpvars = false;
    let mut header_done = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let err = |m: String| ParseVcdError::new(lineno + 1, m);
        if let Some(rest) = line.strip_prefix("$timescale") {
            timescale = rest.trim().trim_end_matches("$end").trim().to_string();
        } else if let Some(rest) = line.strip_prefix("$var") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            // wire 1 <code> <name> $end
            if parts.len() < 4 {
                return Err(err(format!("malformed $var: {line}")));
            }
            let code = parts[2];
            let name = parts[3];
            let idx = signals.len();
            signals.push(name.to_string());
            initial.push(false);
            // Codes borrow from `text`, which outlives the loop.
            let code_start = rest.find(code).expect("code is a substring");
            let code = &rest[code_start..code_start + code.len()];
            by_code.insert(code, idx);
        } else if line.starts_with("$dumpvars") {
            in_dumpvars = true;
        } else if line.starts_with("$enddefinitions") {
            header_done = true;
        } else if line.starts_with("$end") {
            in_dumpvars = false;
        } else if line.starts_with("$scope") || line.starts_with("$upscope") {
            // Flat scope handling: names are unique in our dumps.
        } else if let Some(ts) = line.strip_prefix('#') {
            let t: u64 = ts.trim().parse().map_err(|_| err(format!("bad timestamp {ts}")))?;
            time = t;
        } else if let Some(value) = match line.as_bytes().first() {
            Some(b'0') => Some(false),
            Some(b'1') => Some(true),
            Some(b'x' | b'X' | b'z' | b'Z') => {
                return Err(err(format!(
                    "four-state value change {line:?}: only two-state (0/1) dumps are supported"
                )));
            }
            Some(b'b' | b'B' | b'r' | b'R') => {
                return Err(err(format!(
                    "vector value change {line:?}: only scalar (single-bit) dumps are supported"
                )));
            }
            _ => None,
        } {
            if !header_done && !in_dumpvars {
                return Err(err("value change before $enddefinitions".into()));
            }
            let code = line[1..].trim();
            let &idx = by_code
                .get(code)
                .ok_or_else(|| err(format!("unknown identifier code {code:?}")))?;
            if in_dumpvars {
                initial[idx] = value;
            } else {
                changes.push(Change { time, signal: idx, value });
            }
        } else {
            return Err(err(format!("unrecognized line: {line}")));
        }
    }

    tevot_obs::metrics::VCD_CHANGES_PARSED.add(changes.len() as u64);
    Ok(Vcd { timescale, signals, initial, changes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VcdWriter;

    #[test]
    fn writer_parser_roundtrip() {
        let mut w = VcdWriter::new("tb");
        let a = w.declare_wire("a");
        let b = w.declare_wire("sum_0");
        w.begin_dump(&[true, false]);
        w.change(100, a, false);
        w.change(100, b, true);
        w.change(250, b, false);
        let vcd = parse_vcd(&w.finish()).unwrap();
        assert_eq!(vcd.timescale(), "1ps");
        assert_eq!(vcd.signals(), &["a".to_string(), "sum_0".to_string()]);
        assert_eq!(vcd.initial_values(), &[true, false]);
        assert_eq!(
            vcd.changes(),
            &[
                Change { time: 100, signal: 0, value: false },
                Change { time: 100, signal: 1, value: true },
                Change { time: 250, signal: 1, value: false },
            ]
        );
        assert_eq!(vcd.signal_index("sum_0"), Some(1));
        assert_eq!(vcd.signal_index("nope"), None);
    }

    #[test]
    fn many_signals_roundtrip() {
        let mut w = VcdWriter::new("wide");
        let ids: Vec<_> = (0..200).map(|i| w.declare_wire(format!("s{i}"))).collect();
        w.begin_dump(&vec![false; 200]);
        for (i, &id) in ids.iter().enumerate() {
            w.change(10 + i as u64, id, true);
        }
        let vcd = parse_vcd(&w.finish()).unwrap();
        assert_eq!(vcd.signals().len(), 200);
        assert_eq!(vcd.changes().len(), 200);
        assert!(vcd.changes().iter().all(|c| c.value));
    }

    #[test]
    fn rejects_unknown_code() {
        let text = "$timescale 1ps $end\n$enddefinitions $end\n#5\n1Z\n";
        let err = parse_vcd(text).unwrap_err();
        assert!(err.to_string().contains("unknown identifier"));
    }

    #[test]
    fn rejects_four_state_values_with_a_dedicated_message() {
        for v in ["x!", "X!", "z!", "Z!"] {
            let text = format!("$enddefinitions $end\n#5\n{v}\n");
            let err = parse_vcd(&text).unwrap_err();
            assert!(err.to_string().contains("four-state"), "for {v}: {err}");
        }
    }

    #[test]
    fn rejects_vector_changes_with_a_dedicated_message() {
        let text = "$enddefinitions $end\n#5\nb1010 !\n";
        let err = parse_vcd(text).unwrap_err();
        assert!(err.to_string().contains("vector value change"), "{err}");
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn rejects_bad_timestamp() {
        let text = "$enddefinitions $end\n#xyz\n";
        assert!(parse_vcd(text).is_err());
    }

    #[test]
    fn parse_failpoint_injects_an_error() {
        let _guard = tevot_resil::fail::scoped("vcd.parse=io@1");
        let err = parse_vcd("$enddefinitions $end\n").unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
    }
}
