//! Dynamic timing analysis over a VCD dump.
//!
//! Implements the paper's DTA post-processing step (Sec. IV-A): "to get a
//! dynamic delay at some cycle N, we use the time of the very last toggled
//! event at the input pins of all sequential elements t' to subtract the
//! arrival time of the positive clock edge t" — i.e. per cycle,
//! `D = t_last_toggle - t_cycle_start`. The paper implements this as a
//! Python script over ModelSim dumps; here it is a function over parsed
//! [`Vcd`] data.

use crate::parser::Vcd;

/// Per-cycle dynamic delays extracted from a VCD dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DtaResult {
    delays: Vec<u64>,
}

impl DtaResult {
    /// Dynamic delay (ps) of each cycle; `0` means no watched signal
    /// toggled in that cycle.
    pub fn delays_ps(&self) -> &[u64] {
        &self.delays
    }

    /// Number of cycles covered.
    pub fn num_cycles(&self) -> usize {
        self.delays.len()
    }

    /// Mean dynamic delay across all cycles, in picoseconds.
    pub fn average_delay_ps(&self) -> f64 {
        if self.delays.is_empty() {
            return 0.0;
        }
        self.delays.iter().map(|&d| d as f64).sum::<f64>() / self.delays.len() as f64
    }
}

/// Extracts per-cycle dynamic delays from a VCD dump.
///
/// * `clock_period_ps` — the characterization clock period; cycle `N`
///   covers `[N*T, (N+1)*T)`. Input vectors are applied at cycle
///   boundaries, so a change at exactly `N*T` belongs to cycle `N`. In a
///   correct dump gate outputs toggle strictly after the edge (every cell
///   has non-zero delay), so the boundary case only arises for input nets,
///   which callers normally exclude via `watch`.
/// * `num_cycles` — total cycles simulated (needed because trailing cycles
///   may be toggle-free).
/// * `watch` — predicate selecting the signals whose toggles count (the
///   "input pins of sequential elements": the FU's output nets).
///
/// # Panics
///
/// Panics if `clock_period_ps` is zero.
pub fn dynamic_delays(
    vcd: &Vcd,
    clock_period_ps: u64,
    num_cycles: usize,
    watch: impl Fn(&str) -> bool,
) -> DtaResult {
    assert!(clock_period_ps > 0, "clock period must be non-zero");
    let watched: Vec<bool> = vcd.signals().iter().map(|s| watch(s)).collect();
    let mut delays = vec![0u64; num_cycles];
    for change in vcd.changes() {
        if !watched[change.signal] {
            continue;
        }
        let cycle = (change.time / clock_period_ps) as usize;
        if cycle >= num_cycles {
            continue;
        }
        let offset = change.time - cycle as u64 * clock_period_ps;
        if offset > delays[cycle] {
            delays[cycle] = offset;
        }
    }
    tevot_obs::metrics::VCD_CYCLES_RECONSTRUCTED.add(num_cycles as u64);
    DtaResult { delays }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_vcd, VcdWriter};

    fn sample_vcd() -> Vcd {
        let mut w = VcdWriter::new("tb");
        let a = w.declare_wire("in_a");
        let q0 = w.declare_wire("out_0");
        let q1 = w.declare_wire("out_1");
        w.begin_dump(&[false, false, false]);
        // Cycle 0 (period 1000): toggles at 120 and 340.
        w.change(0, a, true);
        w.change(120, q0, true);
        w.change(340, q1, true);
        // Cycle 1: single late toggle at 1000+870.
        w.change(1000, a, false);
        w.change(1870, q0, false);
        // Cycle 2: nothing.
        parse_vcd(&w.finish()).unwrap()
    }

    #[test]
    fn per_cycle_last_toggle() {
        let vcd = sample_vcd();
        let dta = dynamic_delays(&vcd, 1000, 3, |name| name.starts_with("out_"));
        assert_eq!(dta.delays_ps(), &[340, 870, 0]);
        assert_eq!(dta.num_cycles(), 3);
        assert!((dta.average_delay_ps() - (340.0 + 870.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn input_toggles_do_not_count() {
        let vcd = sample_vcd();
        let dta = dynamic_delays(&vcd, 1000, 3, |name| !name.starts_with("in_"));
        assert_eq!(dta.delays_ps()[0], 340);
        let with_inputs = dynamic_delays(&vcd, 1000, 3, |_| true);
        // Input change at the edge has offset 0, so cycle 0 is unchanged.
        assert_eq!(with_inputs.delays_ps()[0], 340);
    }

    #[test]
    fn changes_past_last_cycle_are_ignored() {
        let vcd = sample_vcd();
        let dta = dynamic_delays(&vcd, 1000, 1, |name| name.starts_with("out_"));
        assert_eq!(dta.delays_ps(), &[340]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let vcd = sample_vcd();
        let _ = dynamic_delays(&vcd, 0, 1, |_| true);
    }
}
