//! Collection strategies.

use crate::strategy::{SizeRange, Strategy};
use crate::test_runner::TestRng;

/// A strategy producing `Vec`s whose elements come from `element` and
/// whose length is drawn from `size` (a `usize` or a `usize` range).
pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
    VecStrategy { element, size: Box::new(size) }
}

/// The result of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Box<dyn SizeRange>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

impl<S> std::fmt::Debug for VecStrategy<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("VecStrategy")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::deterministic_rng;

    #[test]
    fn vec_lengths_follow_the_size_range() {
        let mut rng = deterministic_rng("collection::vec");
        let s = vec(0u32..5, 2..6usize);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let fixed = vec(0u32..5, 3usize);
        assert_eq!(fixed.sample(&mut rng).len(), 3);
    }
}
