//! Test execution support: configuration, case outcomes, and the
//! deterministic per-test RNG.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG type threaded through strategies.
pub type TestRng = SmallRng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject(&'static str),
    /// An assertion failed; the test fails.
    Fail(String),
}

/// A deterministic RNG derived from a test's fully qualified name, so each
/// test sees a stable stream across runs (an FNV-1a hash of the name seeds
/// it).
pub fn deterministic_rng(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_is_stable_per_name_and_distinct_across_names() {
        let mut a = deterministic_rng("x::y");
        let mut b = deterministic_rng("x::y");
        let mut c = deterministic_rng("x::z");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
