//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use rand::Rng as _;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply samples a fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values that fail `pred` (retrying, with a retry
    /// cap to surface overly strict filters).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// The result of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1024 consecutive samples", self.whence);
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
#[derive(Debug)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Sizes accepted by collection strategies: a fixed length or a length
/// range.
pub trait SizeRange {
    /// Samples a concrete length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::deterministic_rng;

    #[test]
    fn ranges_tuples_map_and_union_compose() {
        let mut rng = deterministic_rng("strategy::compose");
        let s = (0u32..10, -1.0f64..1.0).prop_map(|(a, b)| (a as f64) + b);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((-1.0..10.0).contains(&v));
        }
        let u = crate::prop_oneof![Just(1u8), Just(2u8), 5u8..10];
        let mut seen = [false; 10];
        for _ in 0..300 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[5..10].iter().any(|&s| s));
        assert!(!seen[0] && !seen[3] && !seen[4]);
    }

    #[test]
    fn filter_retries_until_accepted() {
        let mut rng = deterministic_rng("strategy::filter");
        let evens = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(evens.sample(&mut rng) % 2, 0);
        }
    }
}
