//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the subset the TEVoT workspace uses: the [`proptest!`] macro,
//! [`Strategy`](strategy::Strategy) with `prop_map`, ranges / tuples /
//! [`Just`](strategy::Just) / [`any`](arbitrary::any) /
//! [`collection::vec`] as strategies, `prop_oneof!`, and the
//! `prop_assert*` / `prop_assume!` macros. Cases are generated from a
//! deterministic per-test seed; failing inputs are reported but **not
//! shrunk** (upstream's shrinking machinery is out of scope for an offline
//! stand-in).

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::deterministic_rng(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $crate::__proptest_bind!(rng; $($args)*);
                        $body
                        Ok(())
                    })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.cases.saturating_mul(64).saturating_add(1024) {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({} for {} passes)",
                                stringify!($name), rejected, passed
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed after {} passing case(s): {}",
                            stringify!($name), passed, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; ) => {};
    // `name: Type` is upstream shorthand for `name in any::<Type>()`.
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty =
            $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_bind!($rng; $name: $ty);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::sample(&$strat, &mut $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::sample(&$strat, &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Fails the current test case with a formatted message unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Chooses uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
