//! The `any::<T>()` entry point: canonical strategies per type.

use std::marker::PhantomData;

use rand::distributions::{Distribution, Standard};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (uniform over all values for integers
/// and `bool`; uniform bit patterns, including non-finite values, for
/// floats).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind [`any`] for primitive types.
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

macro_rules! arbitrary_via_standard {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                Standard.sample(rng)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(PhantomData)
            }
        }
    )*};
}

arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! arbitrary_float_bits {
    ($($t:ty : $bits:ty),* $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let bits: $bits = Standard.sample(rng);
                <$t>::from_bits(bits)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(PhantomData)
            }
        }
    )*};
}

arbitrary_float_bits!(f32: u32, f64: u64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::deterministic_rng;

    #[test]
    fn any_u32_spans_the_word() {
        let mut rng = deterministic_rng("arbitrary::u32");
        let s = any::<u32>();
        let mut high = false;
        let mut low = false;
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            high |= v > u32::MAX / 2;
            low |= v < u32::MAX / 2;
        }
        assert!(high && low);
    }
}
