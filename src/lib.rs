//! Umbrella crate for the TEVoT (DAC 2020) reproduction.
//!
//! This package re-exports every crate of the workspace under one roof so
//! that examples and integration tests can say `use tevot_repro::...`. The
//! individual crates are:
//!
//! * [`netlist`] — gate-level circuit IR and the four functional-unit
//!   generators (32-bit integer add/multiply, IEEE-754 single-precision
//!   add/multiply).
//! * [`timing`] — operating conditions (the paper's Table I grid), the
//!   voltage/temperature cell delay model, SDF annotation and static timing
//!   analysis.
//! * [`vcd`] — value-change-dump writing/parsing and dynamic-delay
//!   extraction.
//! * [`sim`] — the event-driven gate-level timing simulator.
//! * [`ml`] — from-scratch supervised learning (CART, random forest, k-NN,
//!   linear regression, linear SVM).
//! * [`tevot`] — the paper's contribution: feature extraction, the TEVoT
//!   delay model, baselines and evaluation.
//! * [`imgproc`] — Sobel/Gaussian application workloads, PSNR and
//!   timing-error injection.
//! * [`par`] — the zero-dependency scoped thread pool behind `--jobs` /
//!   `TEVOT_JOBS`; its ordered reduction keeps every parallel stage
//!   bit-identical to a serial run.
//! * [`resil`] — crash-safe resumable checkpoints, failpoint fault
//!   injection (`TEVOT_FAIL`), the workspace error taxonomy, and
//!   cooperative cancellation.
//! * [`fleet`] — fault-tolerant multi-process scale-out: lease-sharded
//!   sweeps with bit-identical recovery from killed workers, and
//!   consistent-hash replicated serving with health-checked failover.
//!
//! # Quick start
//!
//! ```
//! use tevot_repro::netlist::fu::FunctionalUnit;
//! use tevot_repro::timing::{DelayModel, OperatingCondition};
//! use tevot_repro::sim::TimingSimulator;
//!
//! let fu = FunctionalUnit::IntAdd.build();
//! let cond = OperatingCondition::new(0.9, 50.0);
//! let delays = DelayModel::tsmc45_like().annotate(&fu, cond);
//! let mut sim = TimingSimulator::new(&fu, &delays);
//! let cycle = sim.step(&FunctionalUnit::IntAdd.encode_operands(7, 9));
//! assert_eq!(FunctionalUnit::IntAdd.decode_output(cycle.settled_outputs()), 16);
//! ```

pub use tevot as core;
pub use tevot_fleet as fleet;
pub use tevot_imgproc as imgproc;
pub use tevot_ml as ml;
pub use tevot_netlist as netlist;
pub use tevot_par as par;
pub use tevot_resil as resil;
pub use tevot_sim as sim;
pub use tevot_timing as timing;
pub use tevot_vcd as vcd;
