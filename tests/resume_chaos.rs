//! Chaos test for the crash-safe resumable pipeline: a sweep killed
//! mid-run by an injected panic (`ckpt.write=panic#3`), then restarted
//! against the same checkpoint directory, must yield a characterization,
//! training dataset, and trained model bit-identical to an uninterrupted
//! baseline — at jobs=1 and jobs=4. Transient injected I/O errors must
//! be absorbed by bounded retry, and a watchdog cancellation must leave
//! a resumable directory behind.
//!
//! Everything lives in ONE `#[test]` on purpose: `tevot_par::with_jobs`
//! and the failpoint registry are process-global, and cargo runs tests
//! of a binary concurrently.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot_repro::core::dta::{Characterization, Characterizer};
use tevot_repro::core::workload::random_workload;
use tevot_repro::core::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
use tevot_repro::ml::ForestParams;
use tevot_repro::netlist::fu::FunctionalUnit;
use tevot_repro::resil::checkpoint::CheckpointDir;
use tevot_repro::resil::retry::Retry;
use tevot_repro::resil::{fail, CancelToken, ErrorKind, Watchdog};
use tevot_repro::timing::{ClockSpeedup, OperatingCondition};

/// Checkpoint root for one scenario. `TEVOT_CHAOS_DIR` (set by the CI
/// chaos job) redirects it into the workspace so surviving shards can be
/// uploaded as an artifact when an assertion fails; the directories are
/// removed only on success.
fn temp_dir(name: &str) -> PathBuf {
    let mut p =
        std::env::var_os("TEVOT_CHAOS_DIR").map(PathBuf::from).unwrap_or_else(std::env::temp_dir);
    p.push(format!("tevot_chaos_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

#[test]
fn killed_sweep_resumes_bit_identical() {
    let fu = FunctionalUnit::IntAdd;
    let characterizer = Characterizer::new(fu);
    let work = random_workload(fu, 200, 11);
    let grid: Vec<OperatingCondition> =
        [(0.82, 0.0), (0.86, 25.0), (0.90, 50.0), (0.95, 75.0), (1.00, 100.0)]
            .iter()
            .map(|&(v, t)| OperatingCondition::new(v, t))
            .collect();
    let speedups = ClockSpeedup::PAPER;

    // Dataset + model from a characterization, fully seeded: any
    // divergence upstream surfaces as a byte-level model mismatch.
    let pipeline = |chars: &[Characterization]| {
        let runs: Vec<_> = chars.iter().map(|c| (&work, c)).collect();
        let data = build_delay_dataset(FeatureEncoding::with_history(), &runs);
        let params = TevotParams {
            forest: ForestParams { num_trees: 3, ..ForestParams::default() },
            encoding: FeatureEncoding::with_history(),
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let model = TevotModel::train(&data, &params, &mut rng);
        let mut bytes = Vec::new();
        model.save(&mut bytes).unwrap();
        (data, bytes)
    };

    let baseline_chars =
        tevot_par::with_jobs(1, || characterizer.characterize_sweep(&grid, &work, &speedups));
    let (baseline_data, baseline_model) = pipeline(&baseline_chars);

    for jobs in [1, 4] {
        let dir = temp_dir(&format!("kill_j{jobs}"));

        // Kill: the manifest and first two condition shards land, then
        // the next checkpoint write panics — simulating a crash with the
        // sweep part-way done.
        let crash = {
            let _chaos = fail::scoped("ckpt.write=panic#3");
            catch_unwind(AssertUnwindSafe(|| {
                tevot_par::with_jobs(jobs, || {
                    let ckpt = CheckpointDir::open(&dir).unwrap();
                    characterizer.characterize_sweep_ckpt(
                        &grid,
                        &work,
                        &speedups,
                        &ckpt,
                        &CancelToken::new(),
                    )
                })
            }))
        };
        assert!(crash.is_err(), "injected panic must kill the sweep at jobs={jobs}");
        let shards = std::fs::read_dir(&dir).unwrap().count();
        assert!(shards >= 1, "crash must leave journaled shards behind at jobs={jobs}");

        // Resume: completed conditions load from their shards, the rest
        // recompute, and everything downstream is bit-identical.
        let resumed_before = tevot_obs::metrics::RESIL_CKPT_SHARDS_RESUMED.get();
        let chars = tevot_par::with_jobs(jobs, || {
            let ckpt = CheckpointDir::open(&dir).unwrap();
            characterizer.characterize_sweep_ckpt(
                &grid,
                &work,
                &speedups,
                &ckpt,
                &CancelToken::new(),
            )
        })
        .unwrap();
        assert_eq!(baseline_chars, chars, "resumed characterization diverged at jobs={jobs}");
        assert!(
            tevot_obs::metrics::RESIL_CKPT_SHARDS_RESUMED.get() > resumed_before,
            "resume must skip at least one checkpointed condition at jobs={jobs}"
        );
        let (data, model) = pipeline(&chars);
        assert_eq!(baseline_data, data, "training matrix diverged at jobs={jobs}");
        assert_eq!(baseline_model, model, "trained model diverged at jobs={jobs}");

        std::fs::remove_dir_all(&dir).ok();
    }

    // Transient injected I/O errors on checkpoint reads and writes are
    // absorbed by bounded retry; the sweep completes bit-identically.
    // 20 attempts keep the chance of 20 consecutive p=0.3 failures
    // negligible (~1e-11 per write).
    {
        let dir = temp_dir("retry");
        let _chaos = fail::scoped("ckpt.write=io@0.3,ckpt.read=io@0.2");
        let chars = tevot_par::with_jobs(2, || {
            let ckpt = CheckpointDir::open(&dir).unwrap().with_retry(Retry::new(
                20,
                Duration::from_micros(1),
                Duration::from_micros(8),
            ));
            characterizer.characterize_sweep_ckpt(
                &grid,
                &work,
                &speedups,
                &ckpt,
                &CancelToken::new(),
            )
        })
        .unwrap();
        assert_eq!(baseline_chars, chars, "sweep under transient i/o faults diverged");
        std::fs::remove_dir_all(&dir).ok();
    }

    // A watchdog deadline cancels the sweep cooperatively (the error
    // classifies as Cancelled, exit code 6) and the partial checkpoint
    // directory resumes to a bit-identical result.
    {
        let dir = temp_dir("watchdog");
        let token = CancelToken::new();
        let _dog = Watchdog::deadline(&token, Duration::from_millis(0));
        let err = tevot_par::with_jobs(1, || {
            let ckpt = CheckpointDir::open(&dir).unwrap();
            characterizer.characterize_sweep_ckpt(&grid, &work, &speedups, &ckpt, &token)
        })
        .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Cancelled, "{err}");
        assert_eq!(err.exit_code(), 6);

        let chars = tevot_par::with_jobs(1, || {
            let ckpt = CheckpointDir::open(&dir).unwrap();
            characterizer.characterize_sweep_ckpt(
                &grid,
                &work,
                &speedups,
                &ckpt,
                &CancelToken::new(),
            )
        })
        .unwrap();
        assert_eq!(baseline_chars, chars, "post-cancellation resume diverged");
        std::fs::remove_dir_all(&dir).ok();
    }
}
