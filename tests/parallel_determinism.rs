//! Parallel/serial equivalence: every `tevot-par` stage must be
//! bit-identical to a forced single-worker run.
//!
//! Determinism comes from two invariants the stages were built around:
//! the pool's ordered reduction (results land by task index, never by
//! completion order) and per-tree RNG streams in the forest (one
//! splitmix-expanded seed per tree, drawn serially before fan-out).
//!
//! Everything lives in ONE `#[test]` on purpose: `tevot_par::with_jobs`
//! swaps a process-global override, and cargo runs tests of a binary
//! concurrently — separate tests could observe each other's override.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot_repro::core::dta::Characterizer;
use tevot_repro::core::workload::random_workload;
use tevot_repro::core::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
use tevot_repro::netlist::fu::FunctionalUnit;
use tevot_repro::timing::{ClockSpeedup, OperatingCondition};

#[test]
fn parallel_pipeline_is_bit_identical_to_serial() {
    let fu = FunctionalUnit::IntAdd;
    let characterizer = Characterizer::new(fu);
    let work = random_workload(fu, 300, 17);
    let grid: Vec<OperatingCondition> = [(0.82, 0.0), (0.90, 25.0), (0.98, 75.0)]
        .iter()
        .map(|&(v, t)| OperatingCondition::new(v, t))
        .collect();

    let run_pipeline = || {
        // Condition sweep (one task per condition, each deriving error
        // classes per period on the pool as well).
        let chars = characterizer.characterize_sweep(&grid, &work, &ClockSpeedup::PAPER);
        // Featurization (one task per run, ordered concatenation).
        let runs: Vec<_> = chars.iter().map(|c| (&work, c)).collect();
        let data = build_delay_dataset(FeatureEncoding::with_history(), &runs);
        // Forest training (one task per tree, per-tree seed streams).
        let mut rng = SmallRng::seed_from_u64(42);
        let model = TevotModel::train(&data, &TevotParams::default(), &mut rng);
        (chars, data, model)
    };

    let (serial_chars, serial_data, serial_model) = tevot_par::with_jobs(1, run_pipeline);
    for jobs in [2, 4, 7] {
        let (chars, data, model) = tevot_par::with_jobs(jobs, run_pipeline);
        assert_eq!(serial_chars, chars, "characterizations diverged at jobs={jobs}");
        assert_eq!(serial_data, data, "training matrix diverged at jobs={jobs}");
        assert_eq!(serial_model, model, "trained model diverged at jobs={jobs}");
    }
}
