//! Reproduces the paper's Sec. IV-B feature-design verification:
//! "For every 20 cycles, if we randomly vary the preceding input x[t-1]
//! while fixing current input x[t], D[t] varies irregularly; if we fix
//! both x[t-1] and x[t], D[t] is also fixed."
//!
//! This is the experiment that justifies including the history input in
//! the feature vector.

use tevot_repro::netlist::fu::FunctionalUnit;
use tevot_repro::sim::TimingSimulator;
use tevot_repro::timing::{DelayModel, OperatingCondition};

fn delay_of_transition(fu: FunctionalUnit, prev: (u32, u32), cur: (u32, u32)) -> u64 {
    let nl = fu.build();
    let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::new(0.9, 25.0));
    let mut sim =
        TimingSimulator::with_initial_inputs(&nl, &ann, &fu.encode_operands(prev.0, prev.1));
    sim.step(&fu.encode_operands(cur.0, cur.1)).dynamic_delay_ps()
}

#[test]
fn fixing_both_inputs_fixes_the_delay() {
    for fu in FunctionalUnit::ALL {
        let prev = (0x1234_5678, 0x0BAD_F00D);
        let cur = (0xDEAD_BEEF, 0x0000_FFFF);
        let d1 = delay_of_transition(fu, prev, cur);
        let d2 = delay_of_transition(fu, prev, cur);
        assert_eq!(d1, d2, "{fu}: same transition must give the same delay");
    }
}

#[test]
fn varying_history_varies_the_delay() {
    // Same x[t], many different x[t-1]: the observed delays must spread.
    for fu in [FunctionalUnit::IntAdd, FunctionalUnit::IntMul] {
        let cur = (0xDEAD_BEEF, 0x1234_5678);
        let mut delays = std::collections::BTreeSet::new();
        for i in 0..20u32 {
            let prev = (i.wrapping_mul(0x9E37_79B9), i.wrapping_mul(0x85EB_CA6B) ^ 0xFFFF);
            delays.insert(delay_of_transition(fu, prev, cur));
        }
        assert!(
            delays.len() >= 5,
            "{fu}: only {} distinct delays across 20 histories — the history \
             input would carry no information",
            delays.len()
        );
        let min = *delays.iter().next().unwrap();
        let max = *delays.iter().last().unwrap();
        assert!(max > min, "{fu}: history left the delay completely unchanged");
        if fu == FunctionalUnit::IntMul {
            // The multiplier's history sensitivity is large in absolute
            // terms; the balanced prefix adder's is narrower but, sitting
            // right at the clock threshold, still decides correctness.
            assert!(max > min + min / 20, "{fu}: delay range {min}..{max} too narrow to matter");
        }
    }
}

#[test]
fn identical_history_means_zero_delay() {
    // x[t-1] == x[t]: nothing toggles, the dynamic delay is zero — the
    // strongest possible form of history dependence.
    for fu in FunctionalUnit::ALL {
        let v = (0xCAFE_BABE, 0x0000_0042);
        assert_eq!(delay_of_transition(fu, v, v), 0, "{fu}");
    }
}
