//! Cross-crate integration of the paper's tool hand-offs: STA writes an
//! SDF file per corner, gate-level simulation back-annotates from it and
//! dumps a VCD, and the DTA extractor recomputes the same per-cycle
//! dynamic delays from the dump — the full Fig. 2 left column.

use tevot_repro::netlist::fu::FunctionalUnit;
use tevot_repro::sim::trace::{dump_vcd, run_vectors};
use tevot_repro::timing::{sdf, sta, DelayModel, OperatingCondition};
use tevot_repro::vcd::{dta, parse_vcd};

#[test]
fn sdf_roundtrip_preserves_simulation_behaviour() {
    let fu = FunctionalUnit::IntAdd;
    let nl = fu.build();
    let cond = OperatingCondition::new(0.84, 75.0);
    let ann = DelayModel::tsmc45_like().annotate(&nl, cond);

    // Hand the annotation across the "tool boundary" as SDF text.
    let text = sdf::write_sdf(&ann);
    let parsed = sdf::parse_sdf(&text, nl.num_nets()).expect("valid SDF");
    assert_eq!(parsed, ann, "SDF round-trip must be lossless");

    // Simulating with the parsed annotation gives identical cycles.
    let vectors: Vec<Vec<bool>> =
        (0..12u32).map(|i| fu.encode_operands(i * 77, i.wrapping_mul(0x1234_5679))).collect();
    let direct = run_vectors(&nl, &ann, &vectors);
    let via_sdf = run_vectors(&nl, &parsed, &vectors);
    assert_eq!(direct, via_sdf);
}

#[test]
fn vcd_dta_reproduces_simulator_delays_for_every_fu() {
    for fu in [FunctionalUnit::IntAdd, FunctionalUnit::FpAdd] {
        let nl = fu.build();
        let cond = OperatingCondition::new(0.9, 25.0);
        let ann = DelayModel::tsmc45_like().annotate(&nl, cond);
        let period = sta::run(&nl, &ann).characterization_period_ps();

        let vectors: Vec<Vec<bool>> = (0..15u32)
            .map(|i| fu.encode_operands(i.wrapping_mul(0x9E37_79B9), i.wrapping_mul(0x85EB_CA6B)))
            .collect();
        let cycles = run_vectors(&nl, &ann, &vectors);
        let text = dump_vcd(&nl, &ann, &vectors, period);
        let vcd = parse_vcd(&text).expect("well-formed VCD");
        let extracted = dta::dynamic_delays(&vcd, period, vectors.len(), |s| {
            s.starts_with("sum_") || s.starts_with("result_") || s.starts_with("product_")
        });
        let direct: Vec<u64> = cycles.iter().map(|c| c.dynamic_delay_ps()).collect();
        assert_eq!(extracted.delays_ps(), direct.as_slice(), "{fu}");
    }
}
