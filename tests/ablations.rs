//! Ablations over the design choices DESIGN.md calls out (assertion side;
//! the timing side lives in `crates/bench/benches/ablation.rs`).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot_repro::core::dta::Characterizer;
use tevot_repro::core::workload::random_workload;
use tevot_repro::core::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
use tevot_repro::ml::ForestParams;
use tevot_repro::netlist::fu::{int_mul_with_style, AdderStyle, FunctionalUnit, MultiplierStyle};
use tevot_repro::timing::{ClockSpeedup, DelayModel, OperatingCondition};

/// The three adder micro-architectures order exactly as their carry
/// structures predict, on both static and dynamic delay.
#[test]
fn adder_styles_order_by_balance() {
    let fu = FunctionalUnit::IntAdd;
    let cond = OperatingCondition::new(0.9, 25.0);
    let work = random_workload(fu, 150, 3);
    let mut crit = Vec::new();
    let mut spread = Vec::new();
    for style in [AdderStyle::RippleCarry, AdderStyle::CarryLookahead, AdderStyle::KoggeStone] {
        let nl = fu.build_with_adder_style(style);
        let ch = Characterizer::with_netlist(fu, nl, DelayModel::tsmc45_like());
        let trace = ch.trace(cond, &work);
        crit.push(trace.critical_delay_ps());
        let delays: Vec<u64> =
            trace.cycles().iter().skip(1).map(|c| c.dynamic_delay_ps()).collect();
        let max = *delays.iter().max().unwrap() as f64;
        let mean = delays.iter().sum::<u64>() as f64 / delays.len() as f64;
        spread.push(max / mean);
    }
    assert!(crit[0] > crit[1] && crit[1] > crit[2], "critical path must shrink: {crit:?}");
    assert!(
        spread[0] > spread[2],
        "the ripple adder's dynamic delays must be more spread than Kogge-Stone's \
         (max/mean {spread:?})"
    );
}

/// The three multiplier micro-architectures order by depth as their
/// structures predict, and all agree functionally with the golden model
/// under timing simulation.
#[test]
fn multiplier_styles_order_by_depth() {
    let fu = FunctionalUnit::IntMul;
    let cond = OperatingCondition::new(0.9, 25.0);
    let work = random_workload(fu, 40, 5);
    let mut crit = Vec::new();
    for style in [MultiplierStyle::RippleArray, MultiplierStyle::CarrySave, MultiplierStyle::Booth]
    {
        let nl = int_mul_with_style(style);
        let ch = Characterizer::with_netlist(fu, nl, DelayModel::tsmc45_like());
        let trace = ch.trace(cond, &work);
        // Functional agreement: settled outputs equal the golden product.
        for (cycle, &(a, b)) in trace.cycles().iter().zip(work.operands()) {
            assert_eq!(
                fu.decode_output(cycle.settled_outputs()),
                fu.golden(a, b),
                "{style:?}: {a:#x} * {b:#x}"
            );
        }
        crit.push(trace.critical_delay_ps());
    }
    assert!(
        crit[0] > crit[1] && crit[1] > crit[2],
        "critical delays should fall RippleArray > CarrySave > Booth: {crit:?}"
    );
}

/// A delay model trained at a subset of conditions still predicts at other
/// conditions because V and T are features — and more trees help.
#[test]
fn forest_size_improves_delay_fit() {
    let fu = FunctionalUnit::IntAdd;
    let characterizer = Characterizer::new(fu);
    let cond = OperatingCondition::new(0.88, 50.0);
    let train = random_workload(fu, 700, 1);
    let truth = characterizer.characterize(cond, &train, &ClockSpeedup::PAPER);
    let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&train, &truth)]);

    let test = random_workload(fu, 250, 2);
    let test_truth = characterizer.characterize(cond, &test, &ClockSpeedup::PAPER);
    let ops = test.operands();
    let actual: Vec<f64> = (1..ops.len()).map(|t| test_truth.delays_ps()[t] as f64).collect();

    let mut rmse = Vec::new();
    for trees in [1usize, 10] {
        let mut rng = SmallRng::seed_from_u64(9);
        let params = TevotParams {
            forest: ForestParams { num_trees: trees, ..ForestParams::default() },
            ..TevotParams::default()
        };
        let model = TevotModel::train(&data, &params, &mut rng);
        let pred: Vec<f64> =
            (1..ops.len()).map(|t| model.predict_delay_ps(cond, ops[t], ops[t - 1])).collect();
        rmse.push(tevot_repro::ml::metrics::root_mean_square_error(&pred, &actual));
    }
    assert!(
        rmse[1] < rmse[0],
        "10 trees (RMSE {:.1}) should beat 1 tree (RMSE {:.1})",
        rmse[1],
        rmse[0]
    );
}

/// The paper's Sec. III flexibility argument in miniature: predicting the
/// delay once and thresholding is equivalent to per-clock error models,
/// without retraining.
#[test]
fn one_delay_model_serves_many_clocks() {
    let fu = FunctionalUnit::IntAdd;
    let characterizer = Characterizer::new(fu);
    let cond = OperatingCondition::new(0.9, 0.0);
    let train = random_workload(fu, 600, 4);
    let truth = characterizer.characterize(cond, &train, &ClockSpeedup::PAPER);
    let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&train, &truth)]);
    let mut rng = SmallRng::seed_from_u64(0);
    let model = TevotModel::train(&data, &TevotParams::default(), &mut rng);

    let ops = train.operands();
    let d = model.predict_delay_ps(cond, ops[10], ops[9]);
    // The error classification flips exactly at the predicted delay.
    assert!(model.predict_error(cond, (d - 1.0).max(0.0) as u64, ops[10], ops[9]));
    assert!(!model.predict_error(cond, d as u64 + 1, ops[10], ops[9]));
}
