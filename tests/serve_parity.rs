//! Acceptance test for the serving tentpole: predictions served over
//! HTTP are **bit-identical** to offline `TevotModel::predict_delay_ps`
//! for the same model and inputs at batch sizes {1, 8, 64} and worker
//! counts {1, 4}.
//!
//! Two independent mechanisms make this hold, and this test pins both:
//! prediction is pure and `tevot-par`'s reduction is ordered (so the
//! microbatch shape cannot change the numbers), and `tevot-obs`'s JSON
//! writer prints shortest round-tripping f64s (so the wire format cannot
//! either).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot::dta::Characterizer;
use tevot::workload::random_workload;
use tevot::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
use tevot_netlist::fu::FunctionalUnit;
use tevot_obs::json::{self, Json};
use tevot_serve::{ServeConfig, Server, DEFAULT_MODEL};
use tevot_timing::{ClockSpeedup, OperatingCondition};

const TRANSITIONS_PER_REQUEST: usize = 8;
const REQUESTS_PER_CONNECTION: usize = 12;
const CONNECTIONS: usize = 4;

fn train_model() -> TevotModel {
    let fu = FunctionalUnit::IntAdd;
    let w = random_workload(fu, 150, 0xA11CE);
    let c = Characterizer::new(fu).characterize(
        OperatingCondition::new(0.9, 25.0),
        &w,
        &ClockSpeedup::PAPER,
    );
    let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&w, &c)]);
    let mut params = TevotParams::default();
    params.forest.num_trees = 3;
    TevotModel::train(&data, &params, &mut SmallRng::seed_from_u64(0xA11CE))
}

/// The deterministic transitions of request `index`.
fn transitions_for(index: usize) -> Vec<((u32, u32), (u32, u32))> {
    (0..TRANSITIONS_PER_REQUEST)
        .map(|t| {
            let x = (index * TRANSITIONS_PER_REQUEST + t) as u32;
            let a = x.wrapping_mul(2_654_435_761);
            let b = x.wrapping_mul(40_503).wrapping_add(17);
            ((a, b), (b.rotate_left(7), a.rotate_left(3)))
        })
        .collect()
}

fn body_for(index: usize) -> String {
    let items: Vec<String> = transitions_for(index)
        .iter()
        .map(|((a, b), (pa, pb))| format!(r#"{{"a":{a},"b":{b},"prev_a":{pa},"prev_b":{pb}}}"#))
        .collect();
    format!(r#"{{"voltage":0.9,"temperature":25,"transitions":[{}]}}"#, items.join(","))
}

/// Sends `POST /predict` for request `index` over a fresh framing on the
/// given keep-alive streams and returns the served delay bits.
fn round_trip(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, index: usize) -> Vec<u64> {
    let body = body_for(index);
    write!(
        writer,
        "POST /predict HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");

    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(line.contains("200"), "expected 200, got {line:?}");
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("header line");
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("Content-Length");
            }
        }
    }
    let mut raw = vec![0u8; content_length];
    reader.read_exact(&mut raw).expect("body");
    let doc = json::parse(std::str::from_utf8(&raw).unwrap()).expect("JSON body");
    doc.get("delays_ps")
        .and_then(Json::as_arr)
        .expect("delays_ps array")
        .iter()
        .map(|d| d.as_f64().expect("numeric delay").to_bits())
        .collect()
}

#[test]
fn served_predictions_are_bit_identical_at_every_batch_and_worker_shape() {
    let model = train_model();
    let cond = OperatingCondition::new(0.9, 25.0);

    // Offline ground truth, computed once per request index.
    let total = CONNECTIONS * REQUESTS_PER_CONNECTION;
    let expected: Vec<Vec<u64>> = (0..total)
        .map(|index| {
            transitions_for(index)
                .iter()
                .map(|&(cur, prev)| model.predict_delay_ps(cond, cur, prev).to_bits())
                .collect()
        })
        .collect();

    for batch in [1usize, 8, 64] {
        for jobs in [1usize, 4] {
            let config = ServeConfig {
                jobs,
                batch,
                // A small wait so concurrent requests genuinely merge
                // into shared microbatches at batch > 1.
                batch_wait: Duration::from_millis(if batch > 1 { 3 } else { 0 }),
                max_queue: 512,
                ..ServeConfig::default()
            };
            let server = Server::start(config).expect("bind loopback");
            server.state().registry.insert(DEFAULT_MODEL, model.clone());
            let addr = server.local_addr();

            std::thread::scope(|scope| {
                let expected = &expected;
                let handles: Vec<_> = (0..CONNECTIONS)
                    .map(|c| {
                        scope.spawn(move || {
                            let stream = TcpStream::connect(addr).expect("connect");
                            stream.set_nodelay(true).ok();
                            let mut writer = stream.try_clone().expect("clone");
                            let mut reader = BufReader::new(stream);
                            for r in 0..REQUESTS_PER_CONNECTION {
                                let index = c * REQUESTS_PER_CONNECTION + r;
                                let served = round_trip(&mut writer, &mut reader, index);
                                assert_eq!(
                                    served, expected[index],
                                    "request {index} diverged at batch {batch}, jobs {jobs}"
                                );
                            }
                        })
                    })
                    .collect();
                for handle in handles {
                    handle.join().expect("client thread");
                }
            });

            server.shutdown();
        }
    }
}
