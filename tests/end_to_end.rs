//! Cross-crate integration: the full Fig. 2 pipeline (DTA -> training ->
//! evaluation) at reduced scale, plus the baselines' characteristic
//! behaviours from Table III.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot_repro::core::dta::Characterizer;
use tevot_repro::core::eval::{evaluate_predictor, mean_accuracy};
use tevot_repro::core::workload::random_workload;
use tevot_repro::core::{
    build_delay_dataset, DelayBased, ErrorPredictor, FeatureEncoding, TerBased, TevotModel,
    TevotParams,
};
use tevot_repro::netlist::fu::FunctionalUnit;
use tevot_repro::timing::{ClockSpeedup, OperatingCondition};

#[test]
fn pipeline_beats_baselines_on_random_data() {
    let fu = FunctionalUnit::IntAdd;
    let characterizer = Characterizer::new(fu);
    let conditions = [OperatingCondition::new(0.85, 0.0), OperatingCondition::new(0.95, 100.0)];

    let train = random_workload(fu, 700, 1);
    let test = random_workload(fu, 250, 2);

    let train_chars: Vec<_> = conditions
        .iter()
        .map(|&c| characterizer.characterize(c, &train, &ClockSpeedup::PAPER))
        .collect();
    let runs: Vec<_> = train_chars.iter().map(|c| (&train, c)).collect();
    let data = build_delay_dataset(FeatureEncoding::with_history(), &runs);
    let mut rng = SmallRng::seed_from_u64(0);
    let mut tevot = TevotModel::train(&data, &TevotParams::default(), &mut rng);
    let mut delay_based = DelayBased::calibrate(&train_chars);
    let mut ter_based = TerBased::calibrate(&train_chars, 3);

    let mut scores = vec![];
    for (i, &cond) in conditions.iter().enumerate() {
        let truth =
            characterizer.characterize_with_periods(cond, &test, train_chars[i].clock_periods_ps());
        let t = mean_accuracy(&evaluate_predictor(&mut tevot, &test, &truth));
        let d = mean_accuracy(&evaluate_predictor(&mut delay_based, &test, &truth));
        let b = mean_accuracy(&evaluate_predictor(&mut ter_based, &test, &truth));
        scores.push((t, d, b));
    }
    for (t, d, b) in scores {
        assert!(t > 0.85, "TEVoT accuracy {t} too low");
        assert!(t > d, "TEVoT ({t}) must beat Delay-based ({d})");
        assert!(t >= b - 0.02, "TEVoT ({t}) must not lose to TER-based ({b})");
        // Delay-based predicts an error whenever the clock is overclocked,
        // so its accuracy equals the (low) error rate.
        assert!(d < 0.5, "Delay-based should be pessimistic, got {d}");
    }
}

#[test]
fn tevot_transfers_across_clock_speeds() {
    // The paper's key flexibility claim: one delay model serves every
    // clock period. Train once, evaluate at a clock the training labels
    // never mentioned.
    let fu = FunctionalUnit::FpAdd;
    let characterizer = Characterizer::new(fu);
    let cond = OperatingCondition::new(0.9, 50.0);
    let train = random_workload(fu, 700, 5);
    let truth = characterizer.characterize(cond, &train, &ClockSpeedup::PAPER);
    let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&train, &truth)]);
    let mut rng = SmallRng::seed_from_u64(1);
    let mut model = TevotModel::train(&data, &TevotParams::default(), &mut rng);

    let test = random_workload(fu, 250, 6);
    // A clock period between the training speedups.
    let novel_clock = truth.clock_periods_ps()[0] * 97 / 100;
    let test_truth = characterizer.characterize_with_periods(cond, &test, &[novel_clock]);
    let points = evaluate_predictor(&mut model, &test, &test_truth);
    assert!(points[0].accuracy > 0.85, "accuracy {} at an unseen clock period", points[0].accuracy);
}

#[test]
fn predictors_expose_their_names() {
    let fu = FunctionalUnit::IntAdd;
    let characterizer = Characterizer::new(fu);
    let w = random_workload(fu, 120, 9);
    let c = characterizer.characterize(OperatingCondition::nominal(), &w, &ClockSpeedup::PAPER);
    let data = build_delay_dataset(FeatureEncoding::without_history(), &[(&w, &c)]);
    let mut rng = SmallRng::seed_from_u64(2);
    let params = TevotParams { encoding: FeatureEncoding::without_history(), ..Default::default() };
    let nh = TevotModel::train(&data, &params, &mut rng);
    assert_eq!(ErrorPredictor::name(&nh), "TEVoT-NH");
    assert_eq!(ErrorPredictor::name(&DelayBased::calibrate([&c])), "Delay-based");
    assert_eq!(ErrorPredictor::name(&TerBased::calibrate([&c], 0)), "TER-based");
}
