//! Acceptance test for the adaptive-clocking tentpole: `POST /dfs`
//! recommendations served over HTTP are **bit-identical** to the offline
//! `tevot dfs` arithmetic — `tevot_dfs::recommended_t_clk_ps` applied to
//! `TevotModel::predict_delay_ps` — for the same model, condition,
//! guardband and inputs at batch sizes {1, 8} and worker counts {1, 4}.
//!
//! `t_clk_ps` is an integer on the wire, so JSON cannot perturb it; the
//! predicted delays underneath are pinned bit-exactly too, exactly as in
//! `serve_parity`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot::dta::Characterizer;
use tevot::workload::random_workload;
use tevot::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
use tevot_netlist::fu::FunctionalUnit;
use tevot_obs::json::{self, Json};
use tevot_serve::{ServeConfig, Server, DEFAULT_MODEL};
use tevot_timing::{ClockSpeedup, OperatingCondition};

const TRANSITIONS_PER_REQUEST: usize = 8;
const REQUESTS_PER_CONNECTION: usize = 10;
const CONNECTIONS: usize = 4;
const GUARDBAND_PS: f64 = 62.5;

fn train_model() -> TevotModel {
    let fu = FunctionalUnit::IntAdd;
    let w = random_workload(fu, 150, 0xD0F5);
    let c = Characterizer::new(fu).characterize(
        OperatingCondition::new(0.9, 25.0),
        &w,
        &ClockSpeedup::PAPER,
    );
    let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&w, &c)]);
    let mut params = TevotParams::default();
    params.forest.num_trees = 3;
    TevotModel::train(&data, &params, &mut SmallRng::seed_from_u64(0xD0F5))
}

/// The deterministic transitions of request `index`.
fn transitions_for(index: usize) -> Vec<((u32, u32), (u32, u32))> {
    (0..TRANSITIONS_PER_REQUEST)
        .map(|t| {
            let x = (index * TRANSITIONS_PER_REQUEST + t) as u32;
            let a = x.wrapping_mul(2_654_435_761);
            let b = x.wrapping_mul(40_503).wrapping_add(17);
            ((a, b), (b.rotate_left(7), a.rotate_left(3)))
        })
        .collect()
}

fn body_for(index: usize) -> String {
    let items: Vec<String> = transitions_for(index)
        .iter()
        .map(|((a, b), (pa, pb))| format!(r#"{{"a":{a},"b":{b},"prev_a":{pa},"prev_b":{pb}}}"#))
        .collect();
    format!(
        r#"{{"voltage":0.9,"temperature":25,"guardband_ps":{GUARDBAND_PS},"transitions":[{}]}}"#,
        items.join(",")
    )
}

/// Sends `POST /dfs` for request `index` on the keep-alive streams and
/// returns `(delay bits, t_clk)` pairs.
fn round_trip(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    index: usize,
) -> Vec<(u64, u64)> {
    let body = body_for(index);
    write!(writer, "POST /dfs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}", body.len())
        .expect("write request");

    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(line.contains("200"), "expected 200, got {line:?}");
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("header line");
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("Content-Length");
            }
        }
    }
    let mut raw = vec![0u8; content_length];
    reader.read_exact(&mut raw).expect("body");
    let doc = json::parse(std::str::from_utf8(&raw).unwrap()).expect("JSON body");
    let delays = doc.get("delays_ps").and_then(Json::as_arr).expect("delays_ps array");
    let t_clks = doc.get("t_clk_ps").and_then(Json::as_arr).expect("t_clk_ps array");
    assert_eq!(delays.len(), t_clks.len());
    delays
        .iter()
        .zip(t_clks)
        .map(|(d, t)| {
            (d.as_f64().expect("numeric delay").to_bits(), t.as_u64().expect("integer t_clk"))
        })
        .collect()
}

#[test]
fn served_dfs_recommendations_are_bit_identical_to_offline() {
    let model = train_model();
    let cond = OperatingCondition::new(0.9, 25.0);

    // Offline ground truth — the exact arithmetic `tevot dfs` runs.
    let total = CONNECTIONS * REQUESTS_PER_CONNECTION;
    let expected: Vec<Vec<(u64, u64)>> = (0..total)
        .map(|index| {
            transitions_for(index)
                .iter()
                .map(|&(cur, prev)| {
                    let delay = model.predict_delay_ps(cond, cur, prev);
                    (delay.to_bits(), tevot_dfs::recommended_t_clk_ps(delay, GUARDBAND_PS))
                })
                .collect()
        })
        .collect();

    for batch in [1usize, 8] {
        for jobs in [1usize, 4] {
            let config = ServeConfig {
                jobs,
                batch,
                batch_wait: Duration::from_millis(if batch > 1 { 3 } else { 0 }),
                max_queue: 512,
                ..ServeConfig::default()
            };
            let server = Server::start(config).expect("bind loopback");
            server.state().registry.insert(DEFAULT_MODEL, model.clone());
            let addr = server.local_addr();

            std::thread::scope(|scope| {
                let expected = &expected;
                let handles: Vec<_> = (0..CONNECTIONS)
                    .map(|c| {
                        scope.spawn(move || {
                            let stream = TcpStream::connect(addr).expect("connect");
                            stream.set_nodelay(true).ok();
                            let mut writer = stream.try_clone().expect("clone");
                            let mut reader = BufReader::new(stream);
                            for r in 0..REQUESTS_PER_CONNECTION {
                                let index = c * REQUESTS_PER_CONNECTION + r;
                                let served = round_trip(&mut writer, &mut reader, index);
                                assert_eq!(
                                    served, expected[index],
                                    "request {index} diverged at batch {batch}, jobs {jobs}"
                                );
                            }
                        })
                    })
                    .collect();
                for handle in handles {
                    handle.join().expect("client thread");
                }
            });

            server.shutdown();
        }
    }
}
